//! The bytecode interpreter.

use std::rc::Rc;

use bytecode::{BlockId, Cfg, FuncId, Instr, Repo};

use crate::builtins::call_builtin;
use crate::classes::ClassTable;
use crate::error::VmError;
use crate::loader::Loader;
use crate::observer::{ExecObserver, NullObserver, ValueKind};
use crate::value::{ObjRef, Value};

/// Interpreter configuration.
#[derive(Clone, Copy, Debug)]
pub struct VmOptions {
    /// Maximum instructions per top-level call (runaway-loop guard).
    pub fuel: u64,
    /// Maximum call depth.
    pub max_depth: u32,
}

impl Default for VmOptions {
    fn default() -> Self {
        Self {
            fuel: 200_000_000,
            max_depth: 512,
        }
    }
}

/// Counters accumulated across calls, used by tests and the fleet
/// calibration pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Bytecode instructions executed.
    pub instrs: u64,
    /// Function calls performed (static + dynamic).
    pub calls: u64,
    /// Conditional branches executed.
    pub branches: u64,
    /// Property reads.
    pub prop_reads: u64,
    /// Property writes.
    pub prop_writes: u64,
    /// Objects allocated.
    pub allocations: u64,
}

/// The virtual machine: interpreter plus runtime state.
///
/// One `Vm` models one HHVM server process's request-handling state. It is
/// deliberately single-threaded (HHVM request execution is share-nothing);
/// the fleet simulator runs many `Vm`s.
#[derive(Debug)]
pub struct Vm<'r> {
    repo: &'r Repo,
    classes: ClassTable,
    loader: Loader,
    output: String,
    stats: ExecStats,
    options: VmOptions,
    fuel: u64,
    block_maps: Vec<Option<Rc<BlockMap>>>,
}

/// Per-function map from instruction index to the basic block starting
/// there (if any), used to raise block-entry callbacks.
#[derive(Debug)]
struct BlockMap {
    start_of: Vec<Option<BlockId>>,
}

impl BlockMap {
    fn build(cfg: &Cfg, code_len: usize) -> Self {
        let mut start_of = vec![None; code_len];
        for (bi, b) in cfg.blocks().iter().enumerate() {
            start_of[b.start as usize] = Some(BlockId(bi as u32));
        }
        Self { start_of }
    }
}

impl<'r> Vm<'r> {
    /// Creates a VM over a deployed repo with default options.
    pub fn new(repo: &'r Repo) -> Self {
        Self::with_options(repo, VmOptions::default())
    }

    /// Creates a VM with explicit options.
    pub fn with_options(repo: &'r Repo, options: VmOptions) -> Self {
        Self {
            repo,
            classes: ClassTable::new(repo),
            loader: Loader::new(repo),
            output: String::new(),
            stats: ExecStats::default(),
            options,
            fuel: 0,
            block_maps: vec![None; repo.funcs().len()],
        }
    }

    /// The deployed repo.
    pub fn repo(&self) -> &'r Repo {
        self.repo
    }

    /// The class table (e.g. to install property orders before serving).
    pub fn classes_mut(&mut self) -> &mut ClassTable {
        &mut self.classes
    }

    /// The unit loader (e.g. to preload units from a Jump-Start package).
    pub fn loader(&self) -> &Loader {
        &self.loader
    }

    /// Mutable access to the loader for preloading.
    pub fn loader_mut(&mut self) -> &mut Loader {
        &mut self.loader
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Output produced by `print` so far (cleared by [`Vm::take_output`]).
    pub fn output(&self) -> &str {
        &self.output
    }

    /// Takes and clears the output buffer.
    pub fn take_output(&mut self) -> String {
        std::mem::take(&mut self.output)
    }

    /// Calls a function by name.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::UndefinedFunction`] if no such function, or any
    /// error the callee raises.
    pub fn call_by_name(&mut self, name: &str, args: &[Value]) -> Result<Value, VmError> {
        let func = self
            .repo
            .func_by_name(name)
            .ok_or_else(|| VmError::UndefinedFunction(name.to_owned()))?
            .id;
        self.call(func, args)
    }

    /// Calls a function without instrumentation.
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] raised during execution.
    pub fn call(&mut self, func: FuncId, args: &[Value]) -> Result<Value, VmError> {
        let mut obs = NullObserver;
        self.call_observed(func, args, &mut obs)
    }

    /// Calls a function with instrumentation callbacks (profiling mode).
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] raised during execution.
    pub fn call_observed(
        &mut self,
        func: FuncId,
        args: &[Value],
        obs: &mut dyn ExecObserver,
    ) -> Result<Value, VmError> {
        self.fuel = self.options.fuel;
        self.exec(func, args.to_vec(), None, obs, 0)
    }

    fn block_map(&mut self, func: FuncId) -> Rc<BlockMap> {
        if self.block_maps[func.index()].is_none() {
            let f = self.repo.func(func);
            let cfg = Cfg::build(f);
            self.block_maps[func.index()] = Some(Rc::new(BlockMap::build(&cfg, f.code.len())));
        }
        self.block_maps[func.index()]
            .as_ref()
            .expect("just built")
            .clone()
    }

    fn autoload_for_func(&mut self, func: FuncId) {
        let unit = self.repo.func(func).unit;
        self.loader.ensure_loaded(self.repo, unit);
    }

    #[allow(clippy::too_many_lines)]
    fn exec(
        &mut self,
        func_id: FuncId,
        args: Vec<Value>,
        this: Option<ObjRef>,
        obs: &mut dyn ExecObserver,
        depth: u32,
    ) -> Result<Value, VmError> {
        if depth >= self.options.max_depth {
            return Err(VmError::StackOverflow);
        }
        self.autoload_for_func(func_id);
        let func = self.repo.func(func_id);
        debug_assert_eq!(args.len(), func.params as usize);
        obs.on_func_enter(func_id, &args);
        let bm = self.block_map(func_id);

        let mut locals = vec![Value::Null; func.locals as usize];
        for (i, a) in args.into_iter().enumerate() {
            locals[i] = a;
        }
        let mut stack: Vec<Value> = Vec::with_capacity(8);
        let mut pc: usize = 0;

        macro_rules! pop {
            () => {
                stack.pop().expect("verified bytecode cannot underflow")
            };
        }

        loop {
            if self.fuel == 0 {
                return Err(VmError::FuelExhausted);
            }
            self.fuel -= 1;
            self.stats.instrs += 1;
            if let Some(b) = bm.start_of[pc] {
                obs.on_block(func_id, b);
            }
            let instr = func.code[pc];
            match instr {
                Instr::Null => stack.push(Value::Null),
                Instr::True => stack.push(Value::Bool(true)),
                Instr::False => stack.push(Value::Bool(false)),
                Instr::Int(v) => stack.push(Value::Int(v)),
                Instr::Double(v) => stack.push(Value::Float(v)),
                Instr::Str(s) => stack.push(Value::str(self.repo.str(s))),
                Instr::LitArr(a) => stack.push(crate::classes::materialize_lit_array(self.repo, a)),
                Instr::Pop => {
                    let _ = pop!();
                }
                Instr::Dup => {
                    let v = stack.last().expect("verified").clone();
                    stack.push(v);
                }
                Instr::GetL(l) => stack.push(locals[l as usize].clone()),
                Instr::SetL(l) => locals[l as usize] = pop!(),
                Instr::IncL(l, d) => {
                    let old = locals[l as usize].clone();
                    match old {
                        Value::Int(i) => {
                            locals[l as usize] = Value::Int(i.wrapping_add(d as i64));
                            stack.push(Value::Int(i));
                        }
                        other => {
                            return Err(VmError::TypeError {
                                func: func_id,
                                at: pc as u32,
                                detail: format!("incl on {}", other.type_name()),
                            })
                        }
                    }
                }
                Instr::Bin(op) => {
                    let b = pop!();
                    let a = pop!();
                    obs.on_type_observed(func_id, pc as u32, 0, ValueKind::of(&a));
                    obs.on_type_observed(func_id, pc as u32, 1, ValueKind::of(&b));
                    stack.push(self.binop(func_id, pc as u32, op, a, b)?);
                }
                Instr::Un(op) => {
                    let a = pop!();
                    let v = match (op, &a) {
                        (bytecode::UnOp::Not, _) => Value::Bool(!a.truthy()),
                        (bytecode::UnOp::Neg, Value::Int(i)) => Value::Int(i.wrapping_neg()),
                        (bytecode::UnOp::Neg, Value::Float(f)) => Value::Float(-f),
                        (bytecode::UnOp::BitNot, Value::Int(i)) => Value::Int(!i),
                        _ => {
                            return Err(VmError::TypeError {
                                func: func_id,
                                at: pc as u32,
                                detail: format!("{} on {}", op.mnemonic(), a.type_name()),
                            })
                        }
                    };
                    stack.push(v);
                }
                Instr::Jmp(t) => {
                    pc = t as usize;
                    continue;
                }
                Instr::JmpZ(t) => {
                    let c = pop!();
                    self.stats.branches += 1;
                    let taken = !c.truthy();
                    obs.on_branch(func_id, pc as u32, taken);
                    if taken {
                        pc = t as usize;
                        continue;
                    }
                }
                Instr::JmpNZ(t) => {
                    let c = pop!();
                    self.stats.branches += 1;
                    let taken = c.truthy();
                    obs.on_branch(func_id, pc as u32, taken);
                    if taken {
                        pc = t as usize;
                        continue;
                    }
                }
                Instr::Call { func: callee, argc } => {
                    self.stats.calls += 1;
                    let mut call_args = split_args(&mut stack, argc as usize);
                    obs.on_call(func_id, pc as u32, callee);
                    let ret =
                        self.exec(callee, std::mem::take(&mut call_args), None, obs, depth + 1)?;
                    stack.push(ret);
                }
                Instr::CallMethod { name, argc } => {
                    self.stats.calls += 1;
                    let call_args = split_args(&mut stack, argc as usize);
                    let recv = pop!();
                    let obj = match recv {
                        Value::Obj(o) => o,
                        other => {
                            return Err(VmError::NotAnObject {
                                func: func_id,
                                at: pc as u32,
                                found: other.type_name(),
                            })
                        }
                    };
                    let class = obj.borrow().class;
                    let method = self
                        .classes
                        .resolve(self.repo, class)
                        .methods
                        .get(&name)
                        .copied()
                        .ok_or_else(|| VmError::UndefinedMethod {
                            class: self.repo.str(self.repo.class(class).name).to_owned(),
                            method: self.repo.str(name).to_owned(),
                        })?;
                    obs.on_call(func_id, pc as u32, method);
                    let ret = self.exec(method, call_args, Some(obj), obs, depth + 1)?;
                    stack.push(ret);
                }
                Instr::CallBuiltin { builtin, argc } => {
                    let call_args = split_args(&mut stack, argc as usize);
                    let ret = call_builtin(self.repo, builtin, &call_args, &mut self.output)
                        .map_err(|e| match e {
                            VmError::TypeError { detail, .. } => VmError::TypeError {
                                func: func_id,
                                at: pc as u32,
                                detail,
                            },
                            other => other,
                        })?;
                    stack.push(ret);
                }
                Instr::Ret => {
                    let v = pop!();
                    obs.on_func_exit(func_id);
                    return Ok(v);
                }
                Instr::NewObj(class) => {
                    self.stats.allocations += 1;
                    let unit = self.repo.class(class).unit;
                    self.loader.ensure_loaded(self.repo, unit);
                    let obj = self.classes.instantiate(self.repo, class);
                    stack.push(Value::Obj(Rc::new(std::cell::RefCell::new(obj))));
                }
                Instr::GetProp(name) => {
                    self.stats.prop_reads += 1;
                    let recv = pop!();
                    let obj = as_object(func_id, pc as u32, recv)?;
                    let class = obj.borrow().class;
                    obs.on_prop_access(func_id, pc as u32, class, name, false);
                    let slot = self.prop_slot(class, name)?;
                    let v = obj.borrow().slots[slot].clone();
                    stack.push(v);
                }
                Instr::SetProp(name) => {
                    self.stats.prop_writes += 1;
                    let value = pop!();
                    let recv = pop!();
                    let obj = as_object(func_id, pc as u32, recv)?;
                    let class = obj.borrow().class;
                    obs.on_prop_access(func_id, pc as u32, class, name, true);
                    let slot = self.prop_slot(class, name)?;
                    obj.borrow_mut().slots[slot] = value;
                }
                Instr::This => match &this {
                    Some(o) => stack.push(Value::Obj(o.clone())),
                    None => return Err(VmError::NoThis { func: func_id }),
                },
                Instr::NewVec(n) => {
                    let items = split_args(&mut stack, n as usize);
                    stack.push(Value::vec(items));
                }
                Instr::NewDict(n) => {
                    let mut items = split_args(&mut stack, 2 * n as usize);
                    let mut pairs = Vec::with_capacity(n as usize);
                    for chunk in items.chunks_exact_mut(2) {
                        let k = chunk[0].as_dict_key().ok_or_else(|| VmError::TypeError {
                            func: func_id,
                            at: pc as u32,
                            detail: format!("dict key of type {}", chunk[0].type_name()),
                        })?;
                        pairs.push((k, std::mem::take(&mut chunk[1])));
                    }
                    stack.push(Value::dict(pairs));
                }
                Instr::Idx => {
                    let key = pop!();
                    let container = pop!();
                    stack.push(index_get(func_id, pc as u32, &container, &key)?);
                }
                Instr::SetIdx => {
                    let value = pop!();
                    let key = pop!();
                    let container = pop!();
                    index_set(func_id, pc as u32, &container, &key, value)?;
                    stack.push(container);
                }
            }
            pc += 1;
        }
    }

    fn prop_slot(
        &mut self,
        class: bytecode::ClassId,
        name: bytecode::StrId,
    ) -> Result<usize, VmError> {
        self.classes
            .resolve(self.repo, class)
            .layout
            .slot_by_name
            .get(&name)
            .copied()
            .ok_or_else(|| VmError::UndefinedProperty {
                class: self.repo.str(self.repo.class(class).name).to_owned(),
                prop: self.repo.str(name).to_owned(),
            })
    }

    fn binop(
        &mut self,
        func: FuncId,
        at: u32,
        op: bytecode::BinOp,
        a: Value,
        b: Value,
    ) -> Result<Value, VmError> {
        use bytecode::BinOp::*;
        let type_err = |detail: String| VmError::TypeError { func, at, detail };
        Ok(match op {
            Add | Sub | Mul => match (&a, &b) {
                (Value::Int(x), Value::Int(y)) => {
                    let (x, y) = (*x, *y);
                    Value::Int(match op {
                        Add => x.wrapping_add(y),
                        Sub => x.wrapping_sub(y),
                        _ => x.wrapping_mul(y),
                    })
                }
                _ => {
                    let (x, y) = numeric_pair(&a, &b).ok_or_else(|| {
                        type_err(format!(
                            "{} on {} and {}",
                            op.mnemonic(),
                            a.type_name(),
                            b.type_name()
                        ))
                    })?;
                    Value::Float(match op {
                        Add => x + y,
                        Sub => x - y,
                        _ => x * y,
                    })
                }
            },
            Div => match (&a, &b) {
                (Value::Int(x), Value::Int(y)) => {
                    if *y == 0 {
                        return Err(VmError::DivisionByZero { func, at });
                    }
                    if x % y == 0 {
                        Value::Int(x / y)
                    } else {
                        Value::Float(*x as f64 / *y as f64)
                    }
                }
                _ => {
                    let (x, y) = numeric_pair(&a, &b).ok_or_else(|| {
                        type_err(format!("div on {} and {}", a.type_name(), b.type_name()))
                    })?;
                    if y == 0.0 {
                        return Err(VmError::DivisionByZero { func, at });
                    }
                    Value::Float(x / y)
                }
            },
            Mod => match (&a, &b) {
                (Value::Int(x), Value::Int(y)) => {
                    if *y == 0 {
                        return Err(VmError::DivisionByZero { func, at });
                    }
                    Value::Int(x.wrapping_rem(*y))
                }
                _ => {
                    return Err(type_err(format!(
                        "mod on {} and {}",
                        a.type_name(),
                        b.type_name()
                    )))
                }
            },
            Concat => {
                let mut s = a.coerce_to_string();
                s.push_str(&b.coerce_to_string());
                Value::str(&s)
            }
            Eq => Value::Bool(a.loose_eq(&b)),
            Neq => Value::Bool(!a.loose_eq(&b)),
            Lt | Le | Gt | Ge => {
                let ord = a.loose_cmp(&b).ok_or_else(|| {
                    type_err(format!(
                        "{} on {} and {}",
                        op.mnemonic(),
                        a.type_name(),
                        b.type_name()
                    ))
                })?;
                Value::Bool(match op {
                    Lt => ord == std::cmp::Ordering::Less,
                    Le => ord != std::cmp::Ordering::Greater,
                    Gt => ord == std::cmp::Ordering::Greater,
                    _ => ord != std::cmp::Ordering::Less,
                })
            }
            BitAnd | BitOr | BitXor | Shl | Shr => match (&a, &b) {
                (Value::Int(x), Value::Int(y)) => Value::Int(match op {
                    BitAnd => x & y,
                    BitOr => x | y,
                    BitXor => x ^ y,
                    Shl => x.wrapping_shl(*y as u32),
                    _ => x.wrapping_shr(*y as u32),
                }),
                _ => {
                    return Err(type_err(format!(
                        "{} on {} and {}",
                        op.mnemonic(),
                        a.type_name(),
                        b.type_name()
                    )))
                }
            },
        })
    }
}

fn numeric_pair(a: &Value, b: &Value) -> Option<(f64, f64)> {
    Some((a.as_number()?, b.as_number()?))
}

fn as_object(func: FuncId, at: u32, v: Value) -> Result<ObjRef, VmError> {
    match v {
        Value::Obj(o) => Ok(o),
        other => Err(VmError::NotAnObject {
            func,
            at,
            found: other.type_name(),
        }),
    }
}

fn split_args(stack: &mut Vec<Value>, n: usize) -> Vec<Value> {
    let at = stack.len() - n;
    stack.split_off(at)
}

fn index_get(func: FuncId, at: u32, container: &Value, key: &Value) -> Result<Value, VmError> {
    match container {
        Value::Vec(v) => {
            let i = match key {
                Value::Int(i) => *i,
                other => {
                    return Err(VmError::TypeError {
                        func,
                        at,
                        detail: format!("vec index of type {}", other.type_name()),
                    })
                }
            };
            let v = v.borrow();
            if i < 0 || i as usize >= v.len() {
                return Err(VmError::IndexError {
                    detail: format!("vec index {i} out of range"),
                });
            }
            Ok(v[i as usize].clone())
        }
        Value::Dict(d) => {
            let k = key.as_dict_key().ok_or_else(|| VmError::TypeError {
                func,
                at,
                detail: format!("dict key of type {}", key.type_name()),
            })?;
            d.borrow()
                .iter()
                .find(|(dk, _)| *dk == k)
                .map(|(_, v)| v.clone())
                .ok_or_else(|| VmError::IndexError {
                    detail: format!("missing dict key {k}"),
                })
        }
        Value::Str(s) => {
            let i = key.coerce_to_int();
            if i < 0 || i as usize >= s.len() {
                return Err(VmError::IndexError {
                    detail: format!("string index {i} out of range"),
                });
            }
            Ok(Value::str(&s[i as usize..i as usize + 1]))
        }
        other => Err(VmError::TypeError {
            func,
            at,
            detail: format!("index on {}", other.type_name()),
        }),
    }
}

fn index_set(
    func: FuncId,
    at: u32,
    container: &Value,
    key: &Value,
    value: Value,
) -> Result<(), VmError> {
    match container {
        Value::Vec(v) => {
            let i = key.coerce_to_int();
            let mut v = v.borrow_mut();
            if i >= 0 && (i as usize) < v.len() {
                v[i as usize] = value;
                Ok(())
            } else if i as usize == v.len() {
                v.push(value);
                Ok(())
            } else {
                Err(VmError::IndexError {
                    detail: format!("vec store index {i} out of range"),
                })
            }
        }
        Value::Dict(d) => {
            let k = key.as_dict_key().ok_or_else(|| VmError::TypeError {
                func,
                at,
                detail: format!("dict key of type {}", key.type_name()),
            })?;
            let mut d = d.borrow_mut();
            if let Some(slot) = d.iter_mut().find(|(dk, _)| *dk == k) {
                slot.1 = value;
            } else {
                d.push((k, value));
            }
            Ok(())
        }
        other => Err(VmError::TypeError {
            func,
            at,
            detail: format!("index store on {}", other.type_name()),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytecode::{BinOp, Builtin, FuncBuilder, Literal, RepoBuilder, UnOp, Visibility};

    fn build_repo(f: impl FnOnce(&mut RepoBuilder, bytecode::UnitId)) -> Repo {
        let mut b = RepoBuilder::new();
        let u = b.declare_unit("t.hl");
        f(&mut b, u);
        b.finish()
    }

    #[test]
    fn arithmetic_and_comparison() {
        let repo = build_repo(|b, u| {
            let mut f = FuncBuilder::new("f", 2);
            f.emit(Instr::GetL(0));
            f.emit(Instr::GetL(1));
            f.emit(Instr::Bin(BinOp::Add));
            f.emit(Instr::Int(10));
            f.emit(Instr::Bin(BinOp::Lt));
            f.emit(Instr::Ret);
            b.define_func(u, f);
        });
        let mut vm = Vm::new(&repo);
        assert_eq!(
            vm.call_by_name("f", &[Value::Int(3), Value::Int(4)])
                .unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            vm.call_by_name("f", &[Value::Int(7), Value::Int(4)])
                .unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn int_overflow_wraps() {
        let repo = build_repo(|b, u| {
            let mut f = FuncBuilder::new("f", 1);
            f.emit(Instr::GetL(0));
            f.emit(Instr::Int(1));
            f.emit(Instr::Bin(BinOp::Add));
            f.emit(Instr::Ret);
            b.define_func(u, f);
        });
        let mut vm = Vm::new(&repo);
        assert_eq!(
            vm.call_by_name("f", &[Value::Int(i64::MAX)]).unwrap(),
            Value::Int(i64::MIN)
        );
    }

    #[test]
    fn division_semantics() {
        let repo = build_repo(|b, u| {
            let mut f = FuncBuilder::new("f", 2);
            f.emit(Instr::GetL(0));
            f.emit(Instr::GetL(1));
            f.emit(Instr::Bin(BinOp::Div));
            f.emit(Instr::Ret);
            b.define_func(u, f);
        });
        let mut vm = Vm::new(&repo);
        assert_eq!(
            vm.call_by_name("f", &[6.into(), 3.into()]).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            vm.call_by_name("f", &[7.into(), 2.into()]).unwrap(),
            Value::Float(3.5)
        );
        assert!(matches!(
            vm.call_by_name("f", &[1.into(), 0.into()]),
            Err(VmError::DivisionByZero { .. })
        ));
    }

    #[test]
    fn loops_with_incl() {
        // sum = 0; for (i = 0; i < n; i++) sum += i; return sum
        let repo = build_repo(|b, u| {
            let mut f = FuncBuilder::new("sum_to", 1);
            let i = f.new_local();
            let sum = f.new_local();
            let top = f.new_label();
            let out = f.new_label();
            f.emit(Instr::Int(0));
            f.emit(Instr::SetL(i));
            f.emit(Instr::Int(0));
            f.emit(Instr::SetL(sum));
            f.bind(top);
            f.emit(Instr::GetL(i));
            f.emit(Instr::GetL(0));
            f.emit(Instr::Bin(BinOp::Lt));
            f.emit_jmp_z(out);
            f.emit(Instr::GetL(sum));
            f.emit(Instr::GetL(i));
            f.emit(Instr::Bin(BinOp::Add));
            f.emit(Instr::SetL(sum));
            f.emit(Instr::IncL(i, 1));
            f.emit(Instr::Pop);
            f.emit_jmp(top);
            f.bind(out);
            f.emit(Instr::GetL(sum));
            f.emit(Instr::Ret);
            b.define_func(u, f);
        });
        let mut vm = Vm::new(&repo);
        assert_eq!(
            vm.call_by_name("sum_to", &[10.into()]).unwrap(),
            Value::Int(45)
        );
        assert!(vm.stats().branches >= 11);
    }

    #[test]
    fn objects_props_and_methods() {
        let repo = build_repo(|b, u| {
            let c = b.declare_class(
                u,
                "Point",
                None,
                vec![
                    ("x".into(), Literal::Int(0), Visibility::Public),
                    ("y".into(), Literal::Int(0), Visibility::Public),
                ],
            );
            // method mag2() { return this.x*this.x + this.y*this.y; }
            let mut m = FuncBuilder::new("Point::mag2", 0);
            let x = b.intern("x");
            let y = b.intern("y");
            m.emit(Instr::This);
            m.emit(Instr::GetProp(x));
            m.emit(Instr::This);
            m.emit(Instr::GetProp(x));
            m.emit(Instr::Bin(BinOp::Mul));
            m.emit(Instr::This);
            m.emit(Instr::GetProp(y));
            m.emit(Instr::This);
            m.emit(Instr::GetProp(y));
            m.emit(Instr::Bin(BinOp::Mul));
            m.emit(Instr::Bin(BinOp::Add));
            m.emit(Instr::Ret);
            b.define_method(u, c, m);
            // function f() { p = new Point; p.x = 3; p.y = 4; return p.mag2(); }
            let mut f = FuncBuilder::new("f", 0);
            let p = f.new_local();
            let mag2 = b.intern("mag2");
            f.emit(Instr::NewObj(c));
            f.emit(Instr::SetL(p));
            f.emit(Instr::GetL(p));
            f.emit(Instr::Int(3));
            f.emit(Instr::SetProp(x));
            f.emit(Instr::GetL(p));
            f.emit(Instr::Int(4));
            f.emit(Instr::SetProp(y));
            f.emit(Instr::GetL(p));
            f.emit(Instr::CallMethod {
                name: mag2,
                argc: 0,
            });
            f.emit(Instr::Ret);
            b.define_func(u, f);
        });
        let mut vm = Vm::new(&repo);
        assert_eq!(vm.call_by_name("f", &[]).unwrap(), Value::Int(25));
        assert_eq!(vm.stats().allocations, 1);
        assert!(vm.stats().prop_reads >= 4);
    }

    #[test]
    fn semantics_invariant_under_prop_reorder() {
        // The same program must produce identical results regardless of the
        // installed physical property order — the core correctness claim of
        // paper §V-C.
        let build = || {
            build_repo(|b, u| {
                let c = b.declare_class(
                    u,
                    "P",
                    None,
                    vec![
                        ("a".into(), Literal::Int(1), Visibility::Public),
                        ("b".into(), Literal::Int(2), Visibility::Public),
                        ("c".into(), Literal::Int(3), Visibility::Public),
                    ],
                );
                let a = b.intern("a");
                let cc = b.intern("c");
                let mut f = FuncBuilder::new("f", 0);
                let p = f.new_local();
                f.emit(Instr::NewObj(c));
                f.emit(Instr::SetL(p));
                f.emit(Instr::GetL(p));
                f.emit(Instr::Int(10));
                f.emit(Instr::SetProp(a));
                f.emit(Instr::GetL(p));
                f.emit(Instr::GetProp(a));
                f.emit(Instr::GetL(p));
                f.emit(Instr::GetProp(cc));
                f.emit(Instr::Bin(BinOp::Add));
                f.emit(Instr::Ret);
                b.define_func(u, f);
            })
        };
        let repo1 = build();
        let mut vm1 = Vm::new(&repo1);
        let r1 = vm1.call_by_name("f", &[]).unwrap();

        let repo2 = build();
        let mut vm2 = Vm::new(&repo2);
        let class = repo2.class_by_name("P").unwrap().id;
        let order = vec![
            repo2.str_id("c").unwrap(),
            repo2.str_id("b").unwrap(),
            repo2.str_id("a").unwrap(),
        ];
        vm2.classes_mut().install_prop_order(class, order);
        let r2 = vm2.call_by_name("f", &[]).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(r1, Value::Int(13));
    }

    #[test]
    fn vec_dict_roundtrip() {
        let repo = build_repo(|b, u| {
            let k = b.intern("k");
            let mut f = FuncBuilder::new("f", 0);
            // d = dict["k" => 5]; v = vec[1,2]; v[0] = d["k"]; return v[0] + v[1]
            let d = f.new_local();
            let v = f.new_local();
            f.emit(Instr::Str(k));
            f.emit(Instr::Int(5));
            f.emit(Instr::NewDict(1));
            f.emit(Instr::SetL(d));
            f.emit(Instr::Int(1));
            f.emit(Instr::Int(2));
            f.emit(Instr::NewVec(2));
            f.emit(Instr::SetL(v));
            f.emit(Instr::GetL(v));
            f.emit(Instr::Int(0));
            f.emit(Instr::GetL(d));
            f.emit(Instr::Str(k));
            f.emit(Instr::Idx);
            f.emit(Instr::SetIdx);
            f.emit(Instr::Pop);
            f.emit(Instr::GetL(v));
            f.emit(Instr::Int(0));
            f.emit(Instr::Idx);
            f.emit(Instr::GetL(v));
            f.emit(Instr::Int(1));
            f.emit(Instr::Idx);
            f.emit(Instr::Bin(BinOp::Add));
            f.emit(Instr::Ret);
            b.define_func(u, f);
        });
        let mut vm = Vm::new(&repo);
        assert_eq!(vm.call_by_name("f", &[]).unwrap(), Value::Int(7));
    }

    #[test]
    fn fuel_guard_stops_infinite_loop() {
        let repo = build_repo(|b, u| {
            let mut f = FuncBuilder::new("spin", 0);
            let top = f.new_label();
            f.bind(top);
            f.emit_jmp(top);
            // Unreachable but keeps the verifier's shape expectations.
            f.emit(Instr::Null);
            f.emit(Instr::Ret);
            b.define_func(u, f);
        });
        let mut vm = Vm::with_options(
            &repo,
            VmOptions {
                fuel: 10_000,
                max_depth: 16,
            },
        );
        assert_eq!(vm.call_by_name("spin", &[]), Err(VmError::FuelExhausted));
    }

    #[test]
    fn recursion_depth_guard() {
        let repo = build_repo(|b, u| {
            let mut f = FuncBuilder::new("rec", 0);
            let id = bytecode::FuncId::new(0);
            f.emit_raw(Instr::Call { func: id, argc: 0 });
            f.emit(Instr::Ret);
            b.define_func(u, f);
        });
        let mut vm = Vm::with_options(
            &repo,
            VmOptions {
                fuel: 1_000_000,
                max_depth: 64,
            },
        );
        assert_eq!(vm.call_by_name("rec", &[]), Err(VmError::StackOverflow));
    }

    #[test]
    fn observer_sees_blocks_branches_calls() {
        #[derive(Default)]
        struct Rec {
            blocks: u64,
            branches: Vec<bool>,
            calls: Vec<FuncId>,
        }
        impl ExecObserver for Rec {
            fn on_block(&mut self, _f: FuncId, _b: BlockId) {
                self.blocks += 1;
            }
            fn on_branch(&mut self, _f: FuncId, _at: u32, taken: bool) {
                self.branches.push(taken);
            }
            fn on_call(&mut self, _c: FuncId, _at: u32, callee: FuncId) {
                self.calls.push(callee);
            }
        }
        let repo = build_repo(|b, u| {
            let mut g = FuncBuilder::new("g", 0);
            g.emit(Instr::Int(1));
            g.emit(Instr::Ret);
            let gid = b.define_func(u, g);
            let mut f = FuncBuilder::new("f", 1);
            let out = f.new_label();
            f.emit(Instr::GetL(0));
            f.emit_jmp_z(out);
            f.emit(Instr::Call { func: gid, argc: 0 });
            f.emit(Instr::Ret);
            f.bind(out);
            f.emit(Instr::Int(0));
            f.emit(Instr::Ret);
            b.define_func(u, f);
        });
        let mut vm = Vm::new(&repo);
        let f = repo.func_by_name("f").unwrap().id;
        let mut rec = Rec::default();
        vm.call_observed(f, &[Value::Int(1)], &mut rec).unwrap();
        assert!(rec.blocks >= 2);
        assert_eq!(rec.branches, vec![false]);
        assert_eq!(rec.calls.len(), 1);
    }

    #[test]
    fn autoload_logs_units_in_first_use_order() {
        let mut b = RepoBuilder::new();
        let u1 = b.declare_unit("one.hl");
        let u2 = b.declare_unit("two.hl");
        let mut g = FuncBuilder::new("g", 0);
        g.emit(Instr::Int(2));
        g.emit(Instr::Ret);
        let gid = b.define_func(u2, g);
        let mut f = FuncBuilder::new("f", 0);
        f.emit(Instr::Call { func: gid, argc: 0 });
        f.emit(Instr::Ret);
        b.define_func(u1, f);
        let repo = b.finish();
        let mut vm = Vm::new(&repo);
        vm.call_by_name("f", &[]).unwrap();
        assert_eq!(vm.loader().load_order(), vec![u1, u2]);
    }

    #[test]
    fn print_builtin_writes_output() {
        let repo = build_repo(|b, u| {
            let s = b.intern("hi ");
            let mut f = FuncBuilder::new("f", 1);
            f.emit(Instr::Str(s));
            f.emit(Instr::CallBuiltin {
                builtin: Builtin::Print,
                argc: 1,
            });
            f.emit(Instr::Pop);
            f.emit(Instr::GetL(0));
            f.emit(Instr::CallBuiltin {
                builtin: Builtin::Print,
                argc: 1,
            });
            f.emit(Instr::Pop);
            f.emit(Instr::Null);
            f.emit(Instr::Ret);
            b.define_func(u, f);
        });
        let mut vm = Vm::new(&repo);
        vm.call_by_name("f", &[Value::Int(9)]).unwrap();
        assert_eq!(vm.take_output(), "hi 9");
        assert_eq!(vm.output(), "");
    }

    #[test]
    fn unary_ops() {
        let repo = build_repo(|b, u| {
            let mut f = FuncBuilder::new("f", 1);
            f.emit(Instr::GetL(0));
            f.emit(Instr::Un(UnOp::Neg));
            f.emit(Instr::Ret);
            b.define_func(u, f);
        });
        let mut vm = Vm::new(&repo);
        assert_eq!(vm.call_by_name("f", &[5.into()]).unwrap(), Value::Int(-5));
        assert_eq!(
            vm.call_by_name("f", &[Value::Float(2.5)]).unwrap(),
            Value::Float(-2.5)
        );
        assert!(vm.call_by_name("f", &[Value::str("x")]).is_err());
    }

    #[test]
    fn string_concat_coerces() {
        let repo = build_repo(|b, u| {
            let mut f = FuncBuilder::new("f", 2);
            f.emit(Instr::GetL(0));
            f.emit(Instr::GetL(1));
            f.emit(Instr::Bin(BinOp::Concat));
            f.emit(Instr::Ret);
            b.define_func(u, f);
        });
        let mut vm = Vm::new(&repo);
        assert_eq!(
            vm.call_by_name("f", &[Value::str("n="), Value::Int(3)])
                .unwrap(),
            Value::str("n=3")
        );
    }

    #[test]
    fn undefined_method_and_prop_errors() {
        let repo = build_repo(|b, u| {
            let c = b.declare_class(u, "C", None, vec![]);
            let nope = b.intern("nope");
            let mut f = FuncBuilder::new("callm", 0);
            f.emit(Instr::NewObj(c));
            f.emit(Instr::CallMethod {
                name: nope,
                argc: 0,
            });
            f.emit(Instr::Ret);
            b.define_func(u, f);
            let mut g = FuncBuilder::new("getp", 0);
            g.emit(Instr::NewObj(c));
            g.emit(Instr::GetProp(nope));
            g.emit(Instr::Ret);
            b.define_func(u, g);
        });
        let mut vm = Vm::new(&repo);
        assert!(matches!(
            vm.call_by_name("callm", &[]),
            Err(VmError::UndefinedMethod { .. })
        ));
        assert!(matches!(
            vm.call_by_name("getp", &[]),
            Err(VmError::UndefinedProperty { .. })
        ));
    }
}
