//! Runtime class resolution and property layout.
//!
//! HHVM objects store properties in physical slots; the declared order is
//! observable at the language level, so the property-reordering optimization
//! (paper §V-C) keeps a per-class array mapping each property's *declared*
//! index to its *physical* index. This module reproduces exactly that: a
//! [`PropLayout`] with `logical_to_physical`, a resolved method table, and
//! an API ([`ClassTable::install_prop_orders`]) that the Jump-Start consumer
//! calls before any object is created.

use std::collections::HashMap;

use bytecode::{ClassId, FuncId, Repo, StrId};

use crate::value::{Object, Value};

/// Resolved property layout of one class, including inherited properties.
#[derive(Clone, Debug, Default)]
pub struct PropLayout {
    /// Property names in *logical* (declared, ancestors first) order.
    pub logical_names: Vec<StrId>,
    /// Map from logical index to physical slot.
    pub logical_to_physical: Vec<usize>,
    /// Default values in *physical* slot order (as literals evaluated at
    /// class-resolution time).
    pub physical_defaults: Vec<DefaultSlot>,
    /// Physical slot by property name.
    pub slot_by_name: HashMap<StrId, usize>,
}

/// A property default, kept as a simple tag so layouts stay `Clone + Send`.
#[derive(Clone, Debug, PartialEq)]
pub enum DefaultSlot {
    /// Scalar default (null/bool/int/float).
    Scalar(ScalarDefault),
    /// Interned string default.
    Str(StrId),
    /// Literal array default, materialized per object.
    Arr(bytecode::LitArrId),
}

/// Scalar defaults.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ScalarDefault {
    /// Null default.
    Null,
    /// Boolean default.
    Bool(bool),
    /// Integer default.
    Int(i64),
    /// Float default.
    Float(f64),
}

impl PropLayout {
    /// Number of property slots.
    pub fn slot_count(&self) -> usize {
        self.logical_names.len()
    }
}

/// A resolved runtime class.
#[derive(Clone, Debug)]
pub struct RuntimeClass {
    /// The class id.
    pub id: ClassId,
    /// Parent, if any.
    pub parent: Option<ClassId>,
    /// Property layout (inherited + own).
    pub layout: PropLayout,
    /// Fully resolved method table (inherited methods included, overrides
    /// applied), by bare method name.
    pub methods: HashMap<StrId, FuncId>,
}

/// Table of resolved classes, built lazily per class.
///
/// Property *permutations* must be installed before the affected classes are
/// resolved (i.e. before any object of those classes is created) — the same
/// constraint HHVM has, which is why the consumer applies them right after
/// deserializing the package and before serving requests.
#[derive(Debug)]
pub struct ClassTable {
    resolved: Vec<Option<RuntimeClass>>,
    /// Installed physical orders: per class, the *own-layer* property names
    /// in desired physical order (ancestors keep their own layers).
    installed_orders: HashMap<ClassId, Vec<StrId>>,
}

impl ClassTable {
    /// Creates an empty table sized for `repo`.
    pub fn new(repo: &Repo) -> Self {
        Self {
            resolved: vec![None; repo.classes().len()],
            installed_orders: HashMap::new(),
        }
    }

    /// Installs a physical property order for `class`'s own layer.
    ///
    /// `order` lists the class's *own* (non-inherited) property names in the
    /// desired physical order; names missing from `order` keep declared
    /// order after the listed ones. Installing an order for an
    /// already-resolved class is ignored (objects may exist), matching the
    /// paper's "decided when the class is created inside the VM".
    pub fn install_prop_order(&mut self, class: ClassId, order: Vec<StrId>) {
        if self.resolved[class.index()].is_none() {
            self.installed_orders.insert(class, order);
        }
    }

    /// Installs physical property orders for many classes at once.
    pub fn install_prop_orders<I>(&mut self, orders: I)
    where
        I: IntoIterator<Item = (ClassId, Vec<StrId>)>,
    {
        for (c, o) in orders {
            self.install_prop_order(c, o);
        }
    }

    /// Whether `class` has been resolved yet.
    pub fn is_resolved(&self, class: ClassId) -> bool {
        self.resolved[class.index()].is_some()
    }

    /// Resolves `class` (and transitively its ancestors), returning the
    /// runtime class.
    pub fn resolve(&mut self, repo: &Repo, class: ClassId) -> &RuntimeClass {
        if self.resolved[class.index()].is_none() {
            let rc = self.build(repo, class);
            self.resolved[class.index()] = Some(rc);
        }
        self.resolved[class.index()]
            .as_ref()
            .expect("just resolved")
    }

    fn build(&mut self, repo: &Repo, class: ClassId) -> RuntimeClass {
        let cls = repo.class(class);
        // Resolve the parent first; copy its layers.
        let (mut logical_names, mut physical_names, mut methods) = match cls.parent {
            Some(p) => {
                let parent = self.resolve(repo, p);
                let mut phys: Vec<StrId> = vec![StrId::new(u32::MAX); parent.layout.slot_count()];
                for (li, &pi) in parent.layout.logical_to_physical.iter().enumerate() {
                    phys[pi] = parent.layout.logical_names[li];
                }
                (
                    parent.layout.logical_names.clone(),
                    phys,
                    parent.methods.clone(),
                )
            }
            None => (Vec::new(), Vec::new(), HashMap::new()),
        };

        // Own layer: logical order is declared order; physical order is the
        // installed permutation (if any), restricted to this layer.
        let own_names: Vec<StrId> = cls.props.iter().map(|p| p.name).collect();
        logical_names.extend(own_names.iter().copied());
        let own_physical: Vec<StrId> = match self.installed_orders.get(&class) {
            Some(order) => {
                let mut out: Vec<StrId> = order
                    .iter()
                    .copied()
                    .filter(|n| own_names.contains(n))
                    .collect();
                for &n in &own_names {
                    if !out.contains(&n) {
                        out.push(n);
                    }
                }
                out
            }
            None => own_names.clone(),
        };
        physical_names.extend(own_physical);

        // Build maps.
        let slot_by_name: HashMap<StrId, usize> = physical_names
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, i))
            .collect();
        let logical_to_physical: Vec<usize> =
            logical_names.iter().map(|n| slot_by_name[n]).collect();

        // Defaults in physical order: find each physical name's declaring
        // PropDecl by walking the ancestry.
        let mut default_by_name: HashMap<StrId, DefaultSlot> = HashMap::new();
        for c in repo.ancestry(class) {
            for p in &repo.class(c).props {
                let d = match p.default {
                    bytecode::Literal::Null => DefaultSlot::Scalar(ScalarDefault::Null),
                    bytecode::Literal::Bool(b) => DefaultSlot::Scalar(ScalarDefault::Bool(b)),
                    bytecode::Literal::Int(i) => DefaultSlot::Scalar(ScalarDefault::Int(i)),
                    bytecode::Literal::Float(f) => DefaultSlot::Scalar(ScalarDefault::Float(f)),
                    bytecode::Literal::Str(s) => DefaultSlot::Str(s),
                    bytecode::Literal::Arr(a) => DefaultSlot::Arr(a),
                };
                default_by_name.insert(p.name, d);
            }
        }
        let physical_defaults = physical_names
            .iter()
            .map(|n| {
                default_by_name
                    .get(n)
                    .cloned()
                    .unwrap_or(DefaultSlot::Scalar(ScalarDefault::Null))
            })
            .collect();

        // Methods: own layer overrides inherited.
        for &(name, f) in &cls.methods {
            methods.insert(name, f);
        }

        RuntimeClass {
            id: class,
            parent: cls.parent,
            layout: PropLayout {
                logical_names,
                logical_to_physical,
                physical_defaults,
                slot_by_name,
            },
            methods,
        }
    }

    /// Instantiates an object of `class` with default property values.
    pub fn instantiate(&mut self, repo: &Repo, class: ClassId) -> Object {
        let rc = self.resolve(repo, class);
        let slots = rc
            .layout
            .physical_defaults
            .iter()
            .map(|d| materialize_default(repo, d))
            .collect();
        Object { class, slots }
    }
}

fn materialize_default(repo: &Repo, d: &DefaultSlot) -> Value {
    match d {
        DefaultSlot::Scalar(ScalarDefault::Null) => Value::Null,
        DefaultSlot::Scalar(ScalarDefault::Bool(b)) => Value::Bool(*b),
        DefaultSlot::Scalar(ScalarDefault::Int(i)) => Value::Int(*i),
        DefaultSlot::Scalar(ScalarDefault::Float(f)) => Value::Float(*f),
        DefaultSlot::Str(s) => Value::str(repo.str(*s)),
        DefaultSlot::Arr(a) => materialize_lit_array(repo, *a),
    }
}

/// Materializes a literal array from the repo into a fresh runtime value.
pub(crate) fn materialize_lit_array(repo: &Repo, id: bytecode::LitArrId) -> Value {
    match repo.lit_array(id) {
        bytecode::LitArray::Vec(items) => {
            Value::vec(items.iter().map(|l| materialize_literal(repo, l)).collect())
        }
        bytecode::LitArray::Dict(items) => Value::dict(
            items
                .iter()
                .map(|(k, l)| {
                    (
                        crate::value::DictKey::Str(std::rc::Rc::from(repo.str(*k))),
                        materialize_literal(repo, l),
                    )
                })
                .collect(),
        ),
    }
}

fn materialize_literal(repo: &Repo, l: &bytecode::Literal) -> Value {
    match *l {
        bytecode::Literal::Null => Value::Null,
        bytecode::Literal::Bool(b) => Value::Bool(b),
        bytecode::Literal::Int(i) => Value::Int(i),
        bytecode::Literal::Float(f) => Value::Float(f),
        bytecode::Literal::Str(s) => Value::str(repo.str(s)),
        bytecode::Literal::Arr(a) => materialize_lit_array(repo, a),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytecode::{Literal, RepoBuilder, Visibility};

    fn hierarchy() -> (Repo, ClassId, ClassId) {
        let mut b = RepoBuilder::new();
        let u = b.declare_unit("t.hl");
        let base = b.declare_class(
            u,
            "Base",
            None,
            vec![
                ("a".into(), Literal::Int(1), Visibility::Public),
                ("b".into(), Literal::Int(2), Visibility::Public),
            ],
        );
        let kid = b.declare_class(
            u,
            "Kid",
            Some(base),
            vec![
                ("c".into(), Literal::Int(3), Visibility::Public),
                ("d".into(), Literal::Int(4), Visibility::Public),
            ],
        );
        (b.finish(), base, kid)
    }

    #[test]
    fn default_layout_is_declared_order() {
        let (repo, _, kid) = hierarchy();
        let mut ct = ClassTable::new(&repo);
        let obj = ct.instantiate(&repo, kid);
        assert_eq!(
            obj.slots,
            vec![Value::Int(1), Value::Int(2), Value::Int(3), Value::Int(4)]
        );
        let rc = ct.resolve(&repo, kid);
        assert_eq!(rc.layout.logical_to_physical, vec![0, 1, 2, 3]);
    }

    #[test]
    fn installed_order_permutes_own_layer_only() {
        let (repo, _, kid) = hierarchy();
        let mut ct = ClassTable::new(&repo);
        let c = repo.str_id("c").unwrap();
        let d = repo.str_id("d").unwrap();
        // Hotter property `d` first within Kid's layer.
        ct.install_prop_order(kid, vec![d, c]);
        let obj = ct.instantiate(&repo, kid);
        // Base layer (a, b) keeps slots 0-1; Kid's layer is permuted.
        assert_eq!(
            obj.slots,
            vec![Value::Int(1), Value::Int(2), Value::Int(4), Value::Int(3)]
        );
        let rc = ct.resolve(&repo, kid);
        // Logical order unchanged: a, b, c, d — c maps to slot 3 now.
        assert_eq!(rc.layout.logical_to_physical, vec![0, 1, 3, 2]);
    }

    #[test]
    fn install_after_resolution_is_ignored() {
        let (repo, _, kid) = hierarchy();
        let mut ct = ClassTable::new(&repo);
        let _ = ct.instantiate(&repo, kid);
        let c = repo.str_id("c").unwrap();
        let d = repo.str_id("d").unwrap();
        ct.install_prop_order(kid, vec![d, c]);
        let obj = ct.instantiate(&repo, kid);
        assert_eq!(
            obj.slots[2],
            Value::Int(3),
            "layout must not change once resolved"
        );
    }

    #[test]
    fn partial_order_keeps_unlisted_props() {
        let (repo, _, kid) = hierarchy();
        let mut ct = ClassTable::new(&repo);
        let d = repo.str_id("d").unwrap();
        ct.install_prop_order(kid, vec![d]);
        let rc = ct.resolve(&repo, kid).clone();
        let c = repo.str_id("c").unwrap();
        assert_eq!(rc.layout.slot_by_name[&d], 2);
        assert_eq!(rc.layout.slot_by_name[&c], 3);
    }

    #[test]
    fn methods_inherit_and_override() {
        let mut b = RepoBuilder::new();
        let u = b.declare_unit("t.hl");
        let base = b.declare_class(u, "Base", None, vec![]);
        let kid = b.declare_class(u, "Kid", Some(base), vec![]);
        let mut m = bytecode::FuncBuilder::new("Base::f", 0);
        m.emit(bytecode::Instr::Int(1));
        m.emit(bytecode::Instr::Ret);
        let base_f = b.define_method(u, base, m);
        let mut m2 = bytecode::FuncBuilder::new("Base::g", 0);
        m2.emit(bytecode::Instr::Int(2));
        m2.emit(bytecode::Instr::Ret);
        let base_g = b.define_method(u, base, m2);
        let mut m3 = bytecode::FuncBuilder::new("Kid::f", 0);
        m3.emit(bytecode::Instr::Int(3));
        m3.emit(bytecode::Instr::Ret);
        let kid_f = b.define_method(u, kid, m3);
        let repo = b.finish();
        let mut ct = ClassTable::new(&repo);
        let rc = ct.resolve(&repo, kid);
        let f = repo.str_id("f").unwrap();
        let g = repo.str_id("g").unwrap();
        assert_eq!(rc.methods[&f], kid_f);
        assert_eq!(rc.methods[&g], base_g);
        assert_ne!(rc.methods[&f], base_f);
    }
}
