//! Property test: span events recorded concurrently by pipeline-style
//! workers always assemble into well-formed trees, whatever the thread
//! count, nesting depth, and interleaving.

use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn concurrent_worker_spans_form_trees(
        workers in 1usize..8,
        funcs in 1usize..40,
        depth in 1usize..5,
    ) {
        let recorded = AtomicUsize::new(0);
        let ((), trace) = telemetry::capture(|| {
            std::thread::scope(|scope| {
                for wid in 0..workers {
                    let recorded = &recorded;
                    scope.spawn(move || {
                        let _track = telemetry::track(format!("worker {wid}"));
                        let _outer = telemetry::span!("worker-loop", "wid" => wid);
                        for f in 0..funcs {
                            // Vary nesting so interleavings differ per case.
                            let d = 1 + (f + wid) % depth;
                            let mut guards = Vec::new();
                            for level in 0..d {
                                guards.push(
                                    telemetry::span!("compile", "func" => f, "level" => level),
                                );
                            }
                            if f % 3 == 0 {
                                telemetry::instant!("steal", "victim" => (wid + 1) % workers);
                            }
                            telemetry::counter("queue-depth", (funcs - f) as f64);
                            drop(guards);
                            recorded.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            });
        });

        prop_assert_eq!(recorded.load(Ordering::Relaxed), workers * funcs);
        prop_assert_eq!(trace.dropped, 0);

        // Every worker got its own named track.
        for wid in 0..workers {
            let name = format!("worker {wid}");
            prop_assert!(
                trace.tracks.iter().any(|t| t.name == name),
                "missing track {}", name
            );
        }

        // The core property: every track's flat stream assembles into a
        // well-formed span tree.
        let trees = trace
            .trees()
            .unwrap_or_else(|e| panic!("malformed track: {e}"));

        // And the trees carry exactly the spans the workers opened:
        // one worker-loop root per worker track, `funcs` compile chains.
        for (track, roots) in &trees {
            if !track.name.starts_with("worker ") {
                continue;
            }
            prop_assert_eq!(roots.len(), 1, "track {} roots", &track.name);
            let root = &roots[0];
            prop_assert_eq!(root.name.as_str(), "worker-loop");
            let compiles = root
                .children
                .iter()
                .filter(|c| c.name == "compile")
                .count();
            prop_assert_eq!(compiles, funcs);
            // Nesting is ordered: children start no earlier than parents.
            fn check_order(node: &telemetry::SpanNode) -> bool {
                node.children.iter().all(|c| {
                    c.start_ns >= node.start_ns
                        && c.end_ns <= node.end_ns
                        && check_order(c)
                })
            }
            prop_assert!(check_order(root), "child spans escape parent bounds");
        }
    }
}

#[test]
fn capture_discards_prior_session_leftovers() {
    // A first capture leaves nothing behind for the second.
    let ((), first) = telemetry::capture(|| {
        let _s = telemetry::span("left-open-ish");
    });
    assert!(first.event_count() > 0);
    let ((), second) = telemetry::capture(|| {});
    assert_eq!(
        second.event_count(),
        0,
        "stale events leaked across sessions"
    );
}
