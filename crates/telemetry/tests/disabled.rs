//! Disabled-tracer guarantees: no events recorded, and zero heap
//! allocations on the instrumentation hot path.
//!
//! This file is its own test binary so it can install a counting global
//! allocator without affecting the rest of the suite. The counter is a
//! const-initialized thread-local `Cell` (no lazy init, no destructor),
//! so bumping it never recurses into the allocator.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs_on_this_thread() -> u64 {
    ALLOCS.with(Cell::get)
}

/// The compile-hot-path instrumentation pattern, exactly as the pipeline
/// uses it: a span with typed attributes, an instant, a counter sample.
#[inline(never)]
fn instrumented_compile(func: usize) {
    let _span = telemetry::span!("translate", "func" => func, "hot" => true);
    if func.is_multiple_of(7) {
        telemetry::instant!("steal", "victim" => func % 3);
    }
    telemetry::counter("queue-depth", func as f64);
}

#[test]
fn disabled_tracer_records_nothing_and_never_allocates() {
    // Hold the session lock so no concurrent capture() can flip tracing
    // on under us, and start from a clean buffer.
    let _session = telemetry::session_lock();
    drop(telemetry::drain());
    assert!(!telemetry::enabled());

    // Warm up: first call touches TLS and lazy statics.
    instrumented_compile(1);

    let before = allocs_on_this_thread();
    for func in 0..10_000 {
        instrumented_compile(func);
    }
    let delta = allocs_on_this_thread() - before;
    assert_eq!(
        delta, 0,
        "disabled instrumentation allocated {delta} times over 10k compile sites"
    );

    assert_eq!(
        telemetry::drain().event_count(),
        0,
        "disabled tracer buffered events"
    );
}

#[test]
fn enable_disable_boundary_is_respected() {
    let _session = telemetry::session_lock();
    drop(telemetry::drain());

    instrumented_compile(0); // off: ignored
    telemetry::enable();
    instrumented_compile(1); // on: recorded
    telemetry::disable();
    instrumented_compile(2); // off again: ignored

    let trace = telemetry::drain();
    // One span pair + counter from the single enabled call.
    let spans = trace.all_spans().expect("well-formed");
    assert_eq!(spans.len(), 1);
    assert_eq!(spans[0].1.name, "translate");
    assert_eq!(
        spans[0].1.attrs,
        vec![
            ("func", telemetry::AttrValue::U64(1)),
            ("hot", telemetry::AttrValue::Bool(true)),
        ]
    );
}
