//! Chrome-trace (Perfetto / `chrome://tracing`) export and schema
//! validation.
//!
//! Export writes the JSON Object Format: `{"traceEvents":[...]}` with
//! `B`/`E` duration events, `i` instants, `C` counter samples, and `M`
//! metadata records naming every process and thread. Timestamps are
//! microseconds (fractional — nanosecond precision survives). Each
//! [`TrackDump`] becomes one `(pid, tid)` timeline row, so a single-boot
//! trace renders with one track per pipeline worker and a fleet trace with
//! one process group per simulated server.

use crate::json::{self, escape, Json};
use crate::metrics::fmt_f64;
use crate::span::{AttrValue, EventKind};
use crate::trace::Trace;

fn ts_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn attr_json(v: &AttrValue) -> String {
    match v {
        AttrValue::U64(n) => format!("{n}"),
        AttrValue::I64(n) => format!("{n}"),
        AttrValue::F64(n) => fmt_f64(*n),
        AttrValue::Bool(b) => format!("{b}"),
        AttrValue::Str(s) => format!("\"{}\"", escape(s)),
    }
}

fn args_json(attrs: &[(&'static str, AttrValue)]) -> String {
    let parts: Vec<String> = attrs
        .iter()
        .map(|(k, v)| format!("\"{}\":{}", escape(k), attr_json(v)))
        .collect();
    format!("{{{}}}", parts.join(","))
}

impl Trace {
    /// Renders the trace as Chrome-trace JSON, rebased so the earliest
    /// event sits at t=0.
    pub fn to_chrome_json(&self) -> String {
        let base = self
            .tracks
            .iter()
            .flat_map(|t| t.events.iter().map(|e| e.ts_ns))
            .min()
            .unwrap_or(0);
        let mut events: Vec<String> = Vec::new();

        // Process metadata: one record per pid, named by the first track
        // that carries a process name.
        let mut pids: Vec<(u32, String)> = Vec::new();
        for t in &self.tracks {
            if !pids.iter().any(|(p, _)| *p == t.pid) {
                let name = self
                    .tracks
                    .iter()
                    .filter(|o| o.pid == t.pid)
                    .find_map(|o| o.process_name.clone())
                    .unwrap_or_else(|| format!("process {}", t.pid));
                pids.push((t.pid, name));
            }
        }
        for (pid, name) in &pids {
            events.push(format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\"{}\"}}}}",
                escape(name)
            ));
        }
        for t in &self.tracks {
            events.push(format!(
                "{{\"ph\":\"M\",\"pid\":{},\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}}",
                t.pid,
                t.id,
                escape(&t.name)
            ));
        }

        for t in &self.tracks {
            for ev in &t.events {
                let ts = ts_us(ev.ts_ns - base);
                let name = escape(&ev.name);
                let head = format!(
                    "\"pid\":{},\"tid\":{},\"ts\":{ts},\"name\":\"{name}\"",
                    t.pid, t.id
                );
                let line = match &ev.kind {
                    EventKind::Begin => {
                        format!("{{\"ph\":\"B\",{head},\"args\":{}}}", args_json(&ev.attrs))
                    }
                    EventKind::End => format!("{{\"ph\":\"E\",{head}}}"),
                    EventKind::Instant => format!(
                        "{{\"ph\":\"i\",\"s\":\"t\",{head},\"args\":{}}}",
                        args_json(&ev.attrs)
                    ),
                    EventKind::Counter(v) => format!(
                        "{{\"ph\":\"C\",{head},\"args\":{{\"value\":{}}}}}",
                        fmt_f64(*v)
                    ),
                };
                events.push(line);
            }
        }
        format!(
            "{{\"traceEvents\":[\n{}\n],\"displayTimeUnit\":\"ms\"}}\n",
            events.join(",\n")
        )
    }
}

/// What [`validate_chrome`] measured while checking a trace file.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChromeSummary {
    /// Total events (including metadata).
    pub events: usize,
    /// Distinct `(pid, tid)` tracks carrying timed events.
    pub tracks: usize,
    /// Matched begin/end pairs.
    pub span_pairs: usize,
    /// Instant events.
    pub instants: usize,
}

/// Validates Chrome-trace JSON against the event schema: well-formed
/// JSON, a `traceEvents` array (or a bare array), required fields per
/// event, strictly matched B/E pairs per `(pid, tid)` track, and
/// non-decreasing timestamps per track.
///
/// # Errors
///
/// Returns a description of the first violation.
pub fn validate_chrome(text: &str) -> Result<ChromeSummary, String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    let events = match &doc {
        Json::Arr(items) => items.as_slice(),
        Json::Obj(_) => doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .ok_or("missing `traceEvents` array")?,
        _ => return Err("top level must be an object or array".into()),
    };
    let mut summary = ChromeSummary {
        events: events.len(),
        ..Default::default()
    };
    // Per-track open-span stacks and timestamp high-water marks.
    let mut stacks: Vec<((u64, u64), Vec<String>)> = Vec::new();
    let mut last_ts: Vec<((u64, u64), f64)> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let ctx = |msg: &str| format!("event {i}: {msg}");
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("missing `ph`"))?;
        let pid = ev
            .get("pid")
            .and_then(Json::as_u64)
            .ok_or_else(|| ctx("missing numeric `pid`"))?;
        let tid = ev
            .get("tid")
            .and_then(Json::as_u64)
            .ok_or_else(|| ctx("missing numeric `tid`"))?;
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("missing `name`"))?;
        if ph == "M" {
            continue;
        }
        let ts = ev
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or_else(|| ctx("missing numeric `ts`"))?;
        if ts < 0.0 {
            return Err(ctx("negative `ts`"));
        }
        let key = (pid, tid);
        match last_ts.iter_mut().find(|(k, _)| *k == key) {
            Some((_, last)) => {
                if ts < *last {
                    return Err(ctx(&format!(
                        "timestamp regressed on track pid={pid} tid={tid} ({ts} < {last})"
                    )));
                }
                *last = ts;
            }
            None => {
                last_ts.push((key, ts));
                summary.tracks += 1;
            }
        }
        match ph {
            "B" => match stacks.iter_mut().find(|(k, _)| *k == key) {
                Some((_, stack)) => stack.push(name.to_string()),
                None => stacks.push((key, vec![name.to_string()])),
            },
            "E" => {
                let stack = stacks
                    .iter_mut()
                    .find(|(k, _)| *k == key)
                    .map(|(_, s)| s)
                    .ok_or_else(|| ctx("`E` with no open span on its track"))?;
                let open = stack
                    .pop()
                    .ok_or_else(|| ctx("`E` with no open span on its track"))?;
                if open != name {
                    return Err(ctx(&format!("`E` named `{name}` closes span `{open}`")));
                }
                summary.span_pairs += 1;
            }
            "i" | "I" => summary.instants += 1,
            "C" => {
                ev.get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(Json::as_f64)
                    .ok_or_else(|| ctx("counter without numeric `args.value`"))?;
            }
            other => return Err(ctx(&format!("unknown phase `{other}`"))),
        }
    }
    for ((pid, tid), stack) in &stacks {
        if !stack.is_empty() {
            return Err(format!(
                "track pid={pid} tid={tid} ended with {} unmatched `B` events (first open: `{}`)",
                stack.len(),
                stack[0]
            ));
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Event;
    use crate::trace::TrackDump;
    use std::borrow::Cow;

    fn ev(kind: EventKind, name: &'static str, ts: u64) -> Event {
        Event {
            kind,
            name: Cow::Borrowed(name),
            ts_ns: ts,
            attrs: Vec::new(),
        }
    }

    fn sample_trace() -> Trace {
        Trace {
            tracks: vec![
                TrackDump {
                    id: 1,
                    pid: 1,
                    name: "main".into(),
                    process_name: Some("boot".into()),
                    events: vec![
                        ev(EventKind::Begin, "pipeline", 1_000),
                        ev(EventKind::Instant, "ready", 1_500),
                        ev(EventKind::Counter(0.5), "rps", 1_600),
                        ev(EventKind::End, "pipeline", 2_000),
                    ],
                },
                TrackDump {
                    id: 2,
                    pid: 1,
                    name: "worker 0".into(),
                    process_name: None,
                    events: vec![
                        ev(EventKind::Begin, "translate", 1_100),
                        ev(EventKind::End, "translate", 1_900),
                    ],
                },
            ],
            dropped: 0,
        }
    }

    #[test]
    fn export_validates_and_rebases() {
        let json = sample_trace().to_chrome_json();
        let summary = validate_chrome(&json).expect("schema-valid");
        assert_eq!(summary.span_pairs, 2);
        assert_eq!(summary.instants, 1);
        assert_eq!(summary.tracks, 2);
        // Rebased: earliest event at ts 0.
        assert!(json.contains("\"ts\":0.000"));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"name\":\"boot\""));
    }

    #[test]
    fn validator_rejects_unmatched_and_regressing() {
        let unmatched = r#"{"traceEvents":[
            {"ph":"B","pid":1,"tid":1,"ts":0,"name":"a","args":{}}
        ]}"#;
        assert!(validate_chrome(unmatched)
            .unwrap_err()
            .contains("unmatched"));

        let regress = r#"{"traceEvents":[
            {"ph":"B","pid":1,"tid":1,"ts":10,"name":"a","args":{}},
            {"ph":"E","pid":1,"tid":1,"ts":5,"name":"a"}
        ]}"#;
        assert!(validate_chrome(regress).unwrap_err().contains("regressed"));

        let crossed = r#"{"traceEvents":[
            {"ph":"B","pid":1,"tid":1,"ts":0,"name":"a","args":{}},
            {"ph":"E","pid":1,"tid":1,"ts":5,"name":"b"}
        ]}"#;
        assert!(validate_chrome(crossed)
            .unwrap_err()
            .contains("closes span"));

        assert!(validate_chrome("not json").is_err());
        assert!(validate_chrome("{}").is_err());
    }

    #[test]
    fn attrs_render_typed() {
        let mut t = sample_trace();
        t.tracks[0].events[0].attrs = vec![
            ("func", AttrValue::U64(7)),
            ("tag", AttrValue::Str("a\"b".into())),
            ("hot", AttrValue::Bool(true)),
            ("frac", AttrValue::F64(0.25)),
        ];
        let json = t.to_chrome_json();
        assert!(json.contains("\"func\":7"));
        assert!(json.contains("\"tag\":\"a\\\"b\""));
        assert!(json.contains("\"hot\":true"));
        assert!(json.contains("\"frac\":0.25"));
        validate_chrome(&json).expect("still valid");
    }
}
