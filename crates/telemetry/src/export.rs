//! Fleet-level aggregation: many per-server registry [`Snapshot`]s fold
//! into one set of cross-server percentiles.
//!
//! A fleet run produces one registry per simulated server (boot time,
//! ready time, capacity loss, cache hit counts, ...). This module lines
//! those snapshots up by metric name and reports the distribution of each
//! scalar across the fleet — the p50/p95/p99 boot- and ready-time numbers
//! the paper reports fleet-wide.

use crate::json::escape;
use crate::metrics::{fmt_f64, Snapshot};

/// Distribution of one scalar metric across servers.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AggStat {
    /// How many servers reported this metric.
    pub n: usize,
    /// Smallest reported value.
    pub min: f64,
    /// Largest reported value.
    pub max: f64,
    /// Mean across servers.
    pub mean: f64,
    /// Median across servers.
    pub p50: f64,
    /// 95th percentile across servers.
    pub p95: f64,
    /// 99th percentile across servers.
    pub p99: f64,
}

/// Cross-server aggregate of every scalar metric present in any snapshot.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FleetAggregate {
    /// Number of snapshots (servers) aggregated.
    pub servers: usize,
    /// Per-metric distributions, name-sorted.
    pub stats: Vec<(String, AggStat)>,
}

/// Exact quantile of a sorted sample set, with linear interpolation
/// between order statistics. The input must be ascending; `q` is clamped
/// to `[0, 1]`. This is the quantile definition every fleet percentile in
/// the repo uses — exposed so derived statistics (bootstrap CIs, warmup
/// time-to-steady-state bands) agree with [`aggregate`] bit for bit.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    match sorted {
        [] => 0.0,
        [only] => *only,
        _ => {
            let rank = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            let frac = rank - lo as f64;
            sorted[lo] + frac * (sorted[hi] - sorted[lo])
        }
    }
}

/// splitmix64 — the one-instruction-per-state PRNG used for bootstrap
/// resampling. Kept here (not in a `rand` shim) so the CI machinery has a
/// fixed, documented stream: same seed → same resamples on every platform.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Percentile-bootstrap confidence interval for `quantile_sorted(values, q)`.
///
/// Draws `resamples` bootstrap resamples (with replacement, splitmix64
/// stream seeded by `seed`), recomputes the `q` quantile of each, and
/// returns the (2.5%, 97.5%) quantiles of that bootstrap distribution —
/// a 95% percentile CI. Deterministic: the same `(values, q, resamples,
/// seed)` always returns the same interval, so fleet reports carrying CIs
/// stay byte-identical across runs. Empty input returns `(0.0, 0.0)`;
/// a single value returns a degenerate `(v, v)` interval.
pub fn bootstrap_percentile_ci(values: &[f64], q: f64, resamples: u32, seed: u64) -> (f64, f64) {
    match values {
        [] => (0.0, 0.0),
        [only] => (*only, *only),
        _ => {
            let mut sorted: Vec<f64> = values.to_vec();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let n = sorted.len();
            let mut state = seed;
            let mut stats: Vec<f64> = Vec::with_capacity(resamples.max(1) as usize);
            let mut resample: Vec<f64> = Vec::with_capacity(n);
            for _ in 0..resamples.max(1) {
                resample.clear();
                for _ in 0..n {
                    // Multiply-shift maps the 64-bit draw uniformly onto
                    // [0, n) without modulo bias.
                    let idx = ((splitmix64(&mut state) as u128 * n as u128) >> 64) as usize;
                    resample.push(sorted[idx]);
                }
                resample.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                stats.push(quantile_sorted(&resample, q));
            }
            stats.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            (
                quantile_sorted(&stats, 0.025),
                quantile_sorted(&stats, 0.975),
            )
        }
    }
}

fn fold(servers: usize, mut by_name: Vec<(String, Vec<f64>)>) -> FleetAggregate {
    by_name.sort_by(|a, b| a.0.cmp(&b.0));
    let stats = by_name
        .into_iter()
        .filter(|(_, vals)| !vals.is_empty())
        .map(|(name, mut vals)| {
            vals.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let n = vals.len();
            let sum: f64 = vals.iter().sum();
            let stat = AggStat {
                n,
                min: vals[0],
                max: vals[n - 1],
                mean: sum / n as f64,
                p50: quantile_sorted(&vals, 0.50),
                p95: quantile_sorted(&vals, 0.95),
                p99: quantile_sorted(&vals, 0.99),
            };
            (name, stat)
        })
        .collect();
    FleetAggregate { servers, stats }
}

/// Folds per-server snapshots into fleet-wide distributions. Metrics
/// missing on some servers aggregate over the servers that have them
/// (`n` records coverage).
pub fn aggregate(snapshots: &[Snapshot]) -> FleetAggregate {
    let mut by_name: Vec<(String, Vec<f64>)> = Vec::new();
    for snap in snapshots {
        for (name, v) in &snap.scalars {
            if !v.is_finite() {
                continue;
            }
            match by_name.iter_mut().find(|(n, _)| n == name) {
                Some((_, vals)) => vals.push(*v),
                None => by_name.push((name.clone(), vec![*v])),
            }
        }
    }
    fold(snapshots.len(), by_name)
}

/// Folds raw per-metric columns into the same fleet-wide distributions as
/// [`aggregate`], without materializing a registry per server.
///
/// A full `Registry` costs allocations per server; a 10k-server fleet run
/// keeps registries only for a few representatives and carries everyone
/// else as plain numbers. This entry point lets that compact form feed the
/// same percentile machinery. Columns may have different lengths (a metric
/// some servers never report); non-finite values are dropped. Empty
/// columns are omitted from the result, matching `aggregate`'s behavior
/// for metrics no snapshot carries.
pub fn aggregate_values(servers: usize, series: &[(&str, Vec<f64>)]) -> FleetAggregate {
    let by_name = series
        .iter()
        .map(|(name, vals)| {
            (
                name.to_string(),
                vals.iter().copied().filter(|v| v.is_finite()).collect(),
            )
        })
        .collect();
    fold(servers, by_name)
}

impl FleetAggregate {
    /// Distribution for one metric name.
    pub fn stat(&self, name: &str) -> Option<&AggStat> {
        self.stats.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// Renders as JSON: `{"servers":N,"metrics":{name:{n,min,max,...}}}`.
    pub fn to_json(&self) -> String {
        let metrics: Vec<String> = self
            .stats
            .iter()
            .map(|(name, s)| {
                format!(
                    "\"{}\":{{\"n\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                    escape(name),
                    s.n,
                    fmt_f64(s.min),
                    fmt_f64(s.max),
                    fmt_f64(s.mean),
                    fmt_f64(s.p50),
                    fmt_f64(s.p95),
                    fmt_f64(s.p99),
                )
            })
            .collect();
        format!(
            "{{\"servers\":{},\"metrics\":{{{}}}}}",
            self.servers,
            metrics.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn server_snapshot(boot_ms: u64, loss: f64) -> Snapshot {
        let reg = Registry::default();
        reg.gauge("boot_ms").set(boot_ms);
        reg.gauge_f64("capacity_loss").set(loss);
        reg.snapshot()
    }

    #[test]
    fn aggregates_across_servers() {
        let snaps: Vec<Snapshot> = (1..=10)
            .map(|i| server_snapshot(i * 100, i as f64 / 100.0))
            .collect();
        let agg = aggregate(&snaps);
        assert_eq!(agg.servers, 10);
        let boot = agg.stat("boot_ms").unwrap();
        assert_eq!(boot.n, 10);
        assert_eq!(boot.min, 100.0);
        assert_eq!(boot.max, 1000.0);
        assert_eq!(boot.mean, 550.0);
        assert_eq!(boot.p50, 550.0);
        assert!(boot.p95 > boot.p50 && boot.p95 <= boot.max);
        assert!(boot.p99 >= boot.p95);
        let json = agg.to_json();
        assert!(json.contains("\"servers\":10"));
        assert!(json.contains("\"boot_ms\""));
        crate::json::parse(&json).expect("aggregate JSON parses");
    }

    #[test]
    fn handles_partial_coverage_and_empty() {
        assert_eq!(aggregate(&[]).servers, 0);
        let mut snaps = vec![server_snapshot(100, 0.1)];
        let reg = Registry::default();
        reg.gauge("boot_ms").set(300);
        reg.counter("fallbacks").inc();
        snaps.push(reg.snapshot());
        let agg = aggregate(&snaps);
        assert_eq!(agg.stat("boot_ms").unwrap().n, 2);
        assert_eq!(agg.stat("capacity_loss").unwrap().n, 1);
        assert_eq!(agg.stat("fallbacks").unwrap().n, 1);
        assert_eq!(agg.stat("boot_ms").unwrap().p50, 200.0);
    }

    #[test]
    fn aggregate_values_matches_snapshot_aggregation() {
        let snaps: Vec<Snapshot> = (1..=10)
            .map(|i| server_snapshot(i * 100, i as f64 / 100.0))
            .collect();
        let from_snaps = aggregate(&snaps);
        let boots: Vec<f64> = (1..=10).map(|i| (i * 100) as f64).collect();
        let losses: Vec<f64> = (1..=10).map(|i| i as f64 / 100.0).collect();
        let from_values = aggregate_values(10, &[("boot_ms", boots), ("capacity_loss", losses)]);
        assert_eq!(from_snaps, from_values);
        // Ragged coverage and non-finite values are tolerated.
        let agg = aggregate_values(
            5,
            &[
                ("ready_ms", vec![1.0, f64::NAN, 3.0]),
                ("never_reported", vec![]),
            ],
        );
        assert_eq!(agg.servers, 5);
        assert_eq!(agg.stat("ready_ms").unwrap().n, 2);
        assert!(agg.stat("never_reported").is_none());
    }

    #[test]
    fn bootstrap_ci_is_deterministic_and_brackets_the_estimate() {
        let values: Vec<f64> = (0..200)
            .map(|i| (i % 37) as f64 + (i / 37) as f64)
            .collect();
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p50 = quantile_sorted(&sorted, 0.50);
        let (lo, hi) = bootstrap_percentile_ci(&values, 0.50, 200, 42);
        assert!(lo <= hi, "interval is ordered");
        assert!(lo <= p50 && p50 <= hi, "CI brackets the point estimate");
        assert!(lo >= sorted[0] && hi <= sorted[sorted.len() - 1]);
        // Bit-identical across repeat calls with the same seed.
        assert_eq!((lo, hi), bootstrap_percentile_ci(&values, 0.50, 200, 42));
        // A different seed resamples differently (intervals may coincide on
        // pathological inputs, but not on this spread).
        assert_ne!((lo, hi), bootstrap_percentile_ci(&values, 0.50, 200, 43));
    }

    #[test]
    fn bootstrap_ci_degenerate_inputs() {
        assert_eq!(bootstrap_percentile_ci(&[], 0.5, 100, 1), (0.0, 0.0));
        assert_eq!(bootstrap_percentile_ci(&[7.0], 0.5, 100, 1), (7.0, 7.0));
        // All-equal samples collapse to a zero-width interval.
        let same = [3.0; 16];
        assert_eq!(bootstrap_percentile_ci(&same, 0.95, 50, 9), (3.0, 3.0));
    }

    #[test]
    fn single_value_quantiles_collapse() {
        let agg = aggregate(&[server_snapshot(500, 0.5)]);
        let boot = agg.stat("boot_ms").unwrap();
        assert_eq!(boot.p50, 500.0);
        assert_eq!(boot.p99, 500.0);
    }
}
