//! Drained traces and post-hoc span-tree assembly.
//!
//! The recorder ([`crate::span`]) writes flat begin/end/instant events to
//! per-thread buffers; nothing maintains parent pointers at runtime. This
//! module reassembles those flat streams into proper span trees — each
//! track independently, by running a stack over its (chronologically
//! ordered, single-writer) events.

use crate::span::{AttrValue, Event, EventKind};

/// Everything one track recorded, with its identity.
#[derive(Clone, Debug, PartialEq)]
pub struct TrackDump {
    /// Stable track id (tie-breaker and Chrome `tid`).
    pub id: u64,
    /// Process id for grouping (Chrome `pid`; fleet: one per server).
    pub pid: u32,
    /// Track (thread) display name.
    pub name: String,
    /// Optional process display name (first non-`None` per pid wins).
    pub process_name: Option<String>,
    /// Events in recording order.
    pub events: Vec<Event>,
}

/// A drained trace: every track's events plus the overflow count.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    /// Per-track event streams.
    pub tracks: Vec<TrackDump>,
    /// Events lost to ring-buffer overflow across all tracks.
    pub dropped: u64,
}

/// One assembled span with its children.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanNode {
    /// Span name.
    pub name: String,
    /// Begin timestamp (ns since tracer epoch).
    pub start_ns: u64,
    /// End timestamp. Instants have `end_ns == start_ns`.
    pub end_ns: u64,
    /// Attributes from the begin (or instant) event.
    pub attrs: Vec<(&'static str, AttrValue)>,
    /// Nested spans and instants, in start order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }

    /// Duration not covered by any direct child (own time).
    pub fn self_ns(&self) -> u64 {
        let child: u64 = self.children.iter().map(SpanNode::duration_ns).sum();
        self.duration_ns().saturating_sub(child)
    }
}

/// Why a track's event stream is not a well-formed span tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TreeError {
    /// An End arrived with no span open.
    UnmatchedEnd {
        /// Name on the stray End event.
        name: String,
    },
    /// An End's name differs from the innermost open span.
    MismatchedEnd {
        /// Name the End carried.
        got: String,
        /// Name of the open span it should have closed.
        expected: String,
    },
    /// Spans still open when the stream ended.
    UnclosedSpans {
        /// How many.
        open: usize,
    },
    /// Timestamps went backwards within one track.
    NonMonotonic {
        /// Index of the offending event.
        at: usize,
    },
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::UnmatchedEnd { name } => write!(f, "end `{name}` with no open span"),
            TreeError::MismatchedEnd { got, expected } => {
                write!(f, "end `{got}` does not close open span `{expected}`")
            }
            TreeError::UnclosedSpans { open } => write!(f, "{open} spans left open"),
            TreeError::NonMonotonic { at } => write!(f, "timestamp regressed at event {at}"),
        }
    }
}

impl std::error::Error for TreeError {}

impl TrackDump {
    /// Assembles this track's flat events into root spans.
    ///
    /// # Errors
    ///
    /// Returns a [`TreeError`] when the stream is not well formed.
    pub fn tree(&self) -> Result<Vec<SpanNode>, TreeError> {
        let mut roots: Vec<SpanNode> = Vec::new();
        let mut stack: Vec<SpanNode> = Vec::new();
        let mut last_ts = 0u64;
        for (i, ev) in self.events.iter().enumerate() {
            if ev.ts_ns < last_ts {
                return Err(TreeError::NonMonotonic { at: i });
            }
            last_ts = ev.ts_ns;
            match &ev.kind {
                EventKind::Begin => stack.push(SpanNode {
                    name: ev.name.to_string(),
                    start_ns: ev.ts_ns,
                    end_ns: ev.ts_ns,
                    attrs: ev.attrs.clone(),
                    children: Vec::new(),
                }),
                EventKind::End => {
                    let Some(mut node) = stack.pop() else {
                        return Err(TreeError::UnmatchedEnd {
                            name: ev.name.to_string(),
                        });
                    };
                    if node.name != ev.name.as_ref() {
                        return Err(TreeError::MismatchedEnd {
                            got: ev.name.to_string(),
                            expected: node.name,
                        });
                    }
                    node.end_ns = ev.ts_ns;
                    match stack.last_mut() {
                        Some(parent) => parent.children.push(node),
                        None => roots.push(node),
                    }
                }
                EventKind::Instant => {
                    let node = SpanNode {
                        name: ev.name.to_string(),
                        start_ns: ev.ts_ns,
                        end_ns: ev.ts_ns,
                        attrs: ev.attrs.clone(),
                        children: Vec::new(),
                    };
                    match stack.last_mut() {
                        Some(parent) => parent.children.push(node),
                        None => roots.push(node),
                    }
                }
                EventKind::Counter(_) => {}
            }
        }
        if !stack.is_empty() {
            return Err(TreeError::UnclosedSpans { open: stack.len() });
        }
        Ok(roots)
    }
}

impl Trace {
    /// Assembles every track's tree, returning `(track, roots)` pairs.
    ///
    /// # Errors
    ///
    /// Returns the first track's [`TreeError`], if any.
    pub fn trees(&self) -> Result<Vec<(&TrackDump, Vec<SpanNode>)>, TreeError> {
        self.tracks.iter().map(|t| Ok((t, t.tree()?))).collect()
    }

    /// Total recorded events across all tracks.
    pub fn event_count(&self) -> usize {
        self.tracks.iter().map(|t| t.events.len()).sum()
    }

    /// Iterator over every span in every track, flattened (depth-first).
    pub fn all_spans(&self) -> Result<Vec<(String, SpanNode)>, TreeError> {
        let mut out = Vec::new();
        for (track, roots) in self.trees()? {
            let mut work: Vec<SpanNode> = roots;
            while let Some(node) = work.pop() {
                work.extend(node.children.iter().cloned());
                out.push((track.name.clone(), node));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::borrow::Cow;

    fn ev(kind: EventKind, name: &'static str, ts: u64) -> Event {
        Event {
            kind,
            name: Cow::Borrowed(name),
            ts_ns: ts,
            attrs: Vec::new(),
        }
    }

    fn track(events: Vec<Event>) -> TrackDump {
        TrackDump {
            id: 1,
            pid: 1,
            name: "t".into(),
            process_name: None,
            events,
        }
    }

    #[test]
    fn nested_spans_assemble() {
        let t = track(vec![
            ev(EventKind::Begin, "outer", 0),
            ev(EventKind::Begin, "inner", 10),
            ev(EventKind::Instant, "mark", 15),
            ev(EventKind::End, "inner", 20),
            ev(EventKind::End, "outer", 30),
        ]);
        let roots = t.tree().unwrap();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name, "outer");
        assert_eq!(roots[0].duration_ns(), 30);
        assert_eq!(roots[0].children.len(), 1);
        assert_eq!(roots[0].children[0].children[0].name, "mark");
        assert_eq!(roots[0].self_ns(), 20);
    }

    #[test]
    fn malformed_streams_are_rejected() {
        let stray = track(vec![ev(EventKind::End, "x", 0)]);
        assert!(matches!(stray.tree(), Err(TreeError::UnmatchedEnd { .. })));

        let crossed = track(vec![
            ev(EventKind::Begin, "a", 0),
            ev(EventKind::Begin, "b", 1),
            ev(EventKind::End, "a", 2),
        ]);
        assert!(matches!(
            crossed.tree(),
            Err(TreeError::MismatchedEnd { .. })
        ));

        let open = track(vec![ev(EventKind::Begin, "a", 0)]);
        assert_eq!(open.tree(), Err(TreeError::UnclosedSpans { open: 1 }));

        let backwards = track(vec![
            ev(EventKind::Begin, "a", 10),
            ev(EventKind::End, "a", 5),
        ]);
        assert_eq!(backwards.tree(), Err(TreeError::NonMonotonic { at: 1 }));
    }
}
