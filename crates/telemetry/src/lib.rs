//! Unified telemetry for the Jump-Start stack: structured span tracing,
//! a metrics registry, and exporters.
//!
//! Three layers, usable independently:
//!
//! - **Tracer** ([`span`] module): per-thread ring buffers of begin/end
//!   events with typed attributes, RAII span guards, and a global on/off
//!   switch. Disabled cost is one relaxed atomic load per site; the
//!   [`span!`] / [`instant!`] macros skip attribute construction too.
//!   [`drain`] assembles buffers into a [`Trace`]; [`Trace::trees`]
//!   rebuilds the span hierarchy post-hoc.
//! - **Metrics** ([`metrics`] module): named counters, gauges, and
//!   power-of-two-bucket histograms behind a [`Registry`]. `BootStats`,
//!   `CacheStats`, and `WorkerStats` in `core` are rendered as views of a
//!   registry rather than hand-threaded structs.
//! - **Exporters**: Chrome-trace JSON ([`Trace::to_chrome_json`],
//!   loadable in Perfetto, one track per pipeline worker / one process per
//!   simulated server) plus a schema validator ([`validate_chrome`]) for
//!   the CI gate; flat JSON / line-protocol registry dumps
//!   ([`Snapshot::to_json`], [`Snapshot::to_line_protocol`]); and fleet
//!   aggregation ([`aggregate`]) folding per-server snapshots into
//!   fleet-wide p50/p95/p99.
//!
//! The crate is std-only by design so every other crate in the workspace
//! can depend on it without cycles or new external dependencies.

pub mod chrome;
pub mod export;
pub mod json;
pub mod metrics;
pub mod span;
pub mod trace;

pub use chrome::{validate_chrome, ChromeSummary};
pub use export::{
    aggregate, aggregate_values, bootstrap_percentile_ci, quantile_sorted, AggStat, FleetAggregate,
};
pub use metrics::{
    fmt_f64, Counter, Gauge, GaugeF, Histogram, HistogramSummary, Registry, Snapshot,
};
pub use span::{
    capture, counter, disable, drain, enable, enabled, instant, instant_attrs, name_current_track,
    session_lock, set_track_capacity, span, span_attrs, track, track_in, AttrValue, Event,
    EventKind, SessionGuard, SpanGuard, TrackGuard, DEFAULT_TRACK_CAPACITY,
};
pub use trace::{SpanNode, Trace, TrackDump, TreeError};

/// Opens a span, optionally with attributes. With attributes, the
/// attribute vector is only built when tracing is enabled, so disabled
/// sites neither allocate nor evaluate conversions.
///
/// ```
/// let _s = telemetry::span!("translate", "func" => 7usize, "hot" => true);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, $($k:literal => $v:expr),+ $(,)?) => {
        if $crate::enabled() {
            $crate::span_attrs($name, vec![$(($k, $crate::AttrValue::from($v))),+])
        } else {
            $crate::SpanGuard::inert()
        }
    };
}

/// Records an instant marker, optionally with attributes (built only when
/// tracing is enabled).
#[macro_export]
macro_rules! instant {
    ($name:expr) => {
        $crate::instant($name)
    };
    ($name:expr, $($k:literal => $v:expr),+ $(,)?) => {
        if $crate::enabled() {
            $crate::instant_attrs($name, vec![$(($k, $crate::AttrValue::from($v))),+])
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn capture_roundtrips_macros() {
        let ((), trace) = crate::capture(|| {
            let _outer = crate::span!("outer", "n" => 3usize);
            crate::instant!("tick", "which" => 1u64);
            let _inner = crate::span!("inner");
        });
        let spans = trace.all_spans().expect("well-formed");
        assert!(spans.iter().any(|(_, s)| s.name == "outer"));
        assert!(spans.iter().any(|(_, s)| s.name == "inner"));
        assert!(spans.iter().any(|(_, s)| s.name == "tick"));
        let outer = spans.iter().find(|(_, s)| s.name == "outer").unwrap();
        assert_eq!(outer.1.attrs, vec![("n", crate::AttrValue::U64(3))]);
    }

    #[test]
    fn macros_are_silent_when_disabled() {
        let _session = crate::session_lock();
        drop(crate::drain());
        {
            let _s = crate::span!("quiet", "k" => 1u64);
            crate::instant!("quiet-mark");
        }
        assert_eq!(crate::drain().event_count(), 0);
    }
}
