//! A minimal JSON reader/writer helper.
//!
//! The workspace deliberately has no serde; exporters hand-roll their
//! output and this module provides the other direction — a small strict
//! parser used by the `jstrace` summarizer and the CI trace-schema gate.
//! Numbers parse as `f64` (exact for the integer ranges we emit).

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Number value, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Non-negative integer value, if numeric and integral.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n >= 0.0 && n == n.trunc() && n <= u64::MAX as f64 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// String value, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// A parse failure with its byte position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
///
/// Returns a [`JsonError`] describing the first syntax problem.
pub fn parse(src: &str) -> Result<Json, JsonError> {
    let bytes = src.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control char in string")),
                Some(_) => {
                    // Copy the whole UTF-8 scalar.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xc0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("bad utf-8"))?,
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("bad \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let code = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

/// Escapes a string for embedding inside JSON quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a":[1,2.5,-3e2],"b":{"c":"x\ny","d":null},"e":true}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Null));
        assert_eq!(v.get("e"), Some(&Json::Bool(true)));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("{{\"k\":\"{}\"}}", escape(nasty));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = parse("\"\\u0041\\u00e9 é\"").unwrap();
        assert_eq!(v.as_str(), Some("A\u{e9} é"));
    }
}
