//! The metrics registry: named counters, gauges, and fixed-bucket
//! histograms.
//!
//! A [`Registry`] hands out cheap `Arc`-backed handles; after creation
//! every update is a single atomic operation, so handles can be hot-path
//! shared across threads freely. Histograms use power-of-two buckets with
//! interpolated quantile extraction (p50/p95/p99), which is exact enough
//! for latency-shaped data at 64 buckets and needs no per-record
//! allocation or locking.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `v`.
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins integer gauge.
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins floating-point gauge (stored as bits).
#[derive(Clone, Default)]
pub struct GaugeF(Arc<AtomicU64>);

impl GaugeF {
    /// Sets the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Bucket count: one zero bucket plus one per power of two.
const HIST_BUCKETS: usize = 65;

struct HistInner {
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A fixed-bucket (power-of-two) histogram of `u64` samples.
#[derive(Clone)]
pub struct Histogram(Arc<HistInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistInner {
            counts: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }))
    }
}

fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        let h = &self.0;
        h.counts[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        h.sum.fetch_add(v, Ordering::Relaxed);
        h.count.fetch_add(1, Ordering::Relaxed);
        h.min.fetch_min(v, Ordering::Relaxed);
        h.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        let v = self.0.min.load(Ordering::Relaxed);
        if v == u64::MAX {
            0
        } else {
            v
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Interpolated quantile `q` in `[0, 1]`: finds the target bucket by
    /// cumulative count, then interpolates linearly inside its bounds,
    /// clamped to the observed min/max.
    pub fn quantile(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * n as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, c) in self.0.counts.iter().enumerate() {
            let c = c.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            cum += c;
            if cum >= target {
                let (lo, hi) = bucket_bounds(i);
                // Rank k of the c samples in this bucket sits k-1/c of the
                // way through it, so rank 1 lands on the lower edge.
                let into = (target - (cum - c) - 1) as f64 / c as f64;
                let est = lo as f64 + into * (hi - lo) as f64;
                return est.clamp(self.min() as f64, self.max() as f64);
            }
        }
        self.max() as f64
    }

    /// Snapshot of the headline statistics.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

fn bucket_bounds(i: usize) -> (u64, u64) {
    if i == 0 {
        (0, 1)
    } else {
        (1u64 << (i - 1), if i >= 64 { u64::MAX } else { 1u64 << i })
    }
}

/// Point-in-time histogram statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistogramSummary {
    /// Sample count.
    pub count: u64,
    /// Sample sum.
    pub sum: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Median estimate.
    pub p50: f64,
    /// 95th-percentile estimate.
    pub p95: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
}

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    GaugeF(GaugeF),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::GaugeF(_) => "gauge_f64",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A named-metric registry. Cloning shares the underlying store; handle
/// lookups lock a registry-level mutex, but every subsequent update on a
/// handle is lock-free.
#[derive(Clone, Default)]
pub struct Registry {
    metrics: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Registry")
            .field("scalars", &snap.scalars.len())
            .field("histograms", &snap.histograms.len())
            .finish()
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

impl Registry {
    /// Gets or creates the counter `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as another metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        match self.get_or_insert(name, || Metric::Counter(Counter::default())) {
            Metric::Counter(c) => c,
            other => panic!("metric `{name}` is a {}, not a counter", other.kind()),
        }
    }

    /// Gets or creates the integer gauge `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as another metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.get_or_insert(name, || Metric::Gauge(Gauge::default())) {
            Metric::Gauge(g) => g,
            other => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
        }
    }

    /// Gets or creates the floating-point gauge `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as another metric kind.
    pub fn gauge_f64(&self, name: &str) -> GaugeF {
        match self.get_or_insert(name, || Metric::GaugeF(GaugeF::default())) {
            Metric::GaugeF(g) => g,
            other => panic!("metric `{name}` is a {}, not a gauge_f64", other.kind()),
        }
    }

    /// Gets or creates the histogram `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as another metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.get_or_insert(name, || Metric::Histogram(Histogram::default())) {
            Metric::Histogram(h) => h,
            other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
        }
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut metrics = lock(&self.metrics);
        match metrics.get(name) {
            Some(m) => m.clone(),
            None => {
                let m = make();
                metrics.insert(name.to_string(), m.clone());
                m
            }
        }
    }

    /// Whether `name` exists (any kind).
    pub fn contains(&self, name: &str) -> bool {
        lock(&self.metrics).contains_key(name)
    }

    /// Scalar value of `name`: counters and integer gauges as their value,
    /// float gauges as-is. `None` for histograms or unknown names.
    pub fn scalar(&self, name: &str) -> Option<f64> {
        match lock(&self.metrics).get(name)? {
            Metric::Counter(c) => Some(c.get() as f64),
            Metric::Gauge(g) => Some(g.get() as f64),
            Metric::GaugeF(g) => Some(g.get()),
            Metric::Histogram(_) => None,
        }
    }

    /// Integer value of `name` (counter or gauge), defaulting to 0.
    pub fn value_u64(&self, name: &str) -> u64 {
        match lock(&self.metrics).get(name) {
            Some(Metric::Counter(c)) => c.get(),
            Some(Metric::Gauge(g)) => g.get(),
            _ => 0,
        }
    }

    /// Point-in-time copy of every metric.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = lock(&self.metrics);
        let mut scalars = Vec::new();
        let mut histograms = Vec::new();
        for (name, m) in metrics.iter() {
            match m {
                Metric::Counter(c) => scalars.push((name.clone(), c.get() as f64)),
                Metric::Gauge(g) => scalars.push((name.clone(), g.get() as f64)),
                Metric::GaugeF(g) => scalars.push((name.clone(), g.get())),
                Metric::Histogram(h) => histograms.push((name.clone(), h.summary())),
            }
        }
        Snapshot {
            scalars,
            histograms,
        }
    }
}

/// An immutable copy of a registry's state, ready for export.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` for counters and gauges, name-sorted.
    pub scalars: Vec<(String, f64)>,
    /// `(name, summary)` for histograms, name-sorted.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl Snapshot {
    /// Scalar value by name.
    pub fn scalar(&self, name: &str) -> Option<f64> {
        self.scalars
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Renders as a flat JSON object: scalars as numbers, histograms as
    /// `{count, sum, min, max, p50, p95, p99}` objects.
    pub fn to_json(&self) -> String {
        let mut parts = Vec::new();
        for (name, v) in &self.scalars {
            parts.push(format!("\"{}\":{}", crate::json::escape(name), fmt_f64(*v)));
        }
        for (name, h) in &self.histograms {
            parts.push(format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                crate::json::escape(name),
                h.count,
                h.sum,
                h.min,
                h.max,
                fmt_f64(h.p50),
                fmt_f64(h.p95),
                fmt_f64(h.p99),
            ));
        }
        format!("{{{}}}", parts.join(","))
    }

    /// Renders as line protocol (`name,tag=v value=x`), one line per
    /// scalar and one per histogram quantile — the flat dump format for
    /// fleet runs.
    pub fn to_line_protocol(&self, tags: &[(&str, &str)]) -> String {
        let tag_str: String = tags
            .iter()
            .map(|(k, v)| format!(",{k}={v}"))
            .collect::<Vec<_>>()
            .join("");
        let mut out = String::new();
        for (name, v) in &self.scalars {
            out.push_str(&format!("{name}{tag_str} value={}\n", fmt_f64(*v)));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "{name}{tag_str} count={},sum={},p50={},p95={},p99={}\n",
                h.count,
                h.sum,
                fmt_f64(h.p50),
                fmt_f64(h.p95),
                fmt_f64(h.p99)
            ));
        }
        out
    }
}

/// Formats a float as JSON-safe text (non-finite values become `null`).
/// Public so downstream report writers (e.g. the fleet warmup report)
/// serialize floats exactly like registry snapshots do — a prerequisite
/// for byte-identical report digests.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{}", v as i64)
        } else {
            format!("{v}")
        }
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let reg = Registry::default();
        reg.counter("a").add(3);
        reg.counter("a").inc();
        reg.gauge("b").set(7);
        reg.gauge_f64("c").set(0.25);
        assert_eq!(reg.counter("a").get(), 4);
        assert_eq!(reg.value_u64("a"), 4);
        assert_eq!(reg.value_u64("b"), 7);
        assert_eq!(reg.scalar("c"), Some(0.25));
        assert_eq!(reg.scalar("missing"), None);
        let snap = reg.snapshot();
        assert_eq!(snap.scalar("a"), Some(4.0));
        assert!(snap.to_json().contains("\"b\":7"));
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let reg = Registry::default();
        reg.counter("x").inc();
        let _ = reg.gauge("x");
    }

    #[test]
    fn histogram_quantiles_are_sane() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        // Power-of-two buckets: tolerant bounds, but ordered and in range.
        assert!((250.0..=1000.0).contains(&p50), "p50 {p50}");
        assert!(p99 >= p50, "p99 {p99} < p50 {p50}");
        assert!(p99 <= 1000.0);
        // Quantiles clamp to observed extremes.
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.quantile(1.0), 1000.0);
    }

    #[test]
    fn histogram_handles_zero_and_empty() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.min(), 0);
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(0.5), 0.0);
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn line_protocol_has_tags() {
        let reg = Registry::default();
        reg.counter("boot_ms").add(42);
        let lines = reg.snapshot().to_line_protocol(&[("server", "3")]);
        assert_eq!(lines, "boot_ms,server=3 value=42\n");
    }
}
