//! The span tracer: lock-cheap structured tracing for the whole stack.
//!
//! Recording is organized around **per-thread ring buffers**: every thread
//! (or explicitly pushed track, see [`track`]) owns a bounded buffer of
//! begin/end/instant events that only it writes. The hot path is one
//! relaxed atomic load (the global on/off switch) when tracing is
//! disabled, and an uncontended mutex acquire on the thread's own buffer
//! when enabled — no cross-thread synchronization until [`drain`]
//! assembles the buffers into a [`Trace`](crate::Trace).
//!
//! Spans are RAII: [`span`] records the begin event and the returned
//! [`SpanGuard`] records the end event on drop, so a span can never be
//! left open by an early return. Attributes are typed ([`AttrValue`]);
//! the [`span!`](crate::span!) / [`instant!`](crate::instant!) macros
//! skip attribute construction entirely while tracing is off.

use std::borrow::Cow;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use crate::trace::{Trace, TrackDump};

/// Default per-track ring-buffer capacity (events).
pub const DEFAULT_TRACK_CAPACITY: usize = 1 << 17;

/// A typed span/instant attribute value.
#[derive(Clone, Debug, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Text.
    Str(String),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

/// What kind of trace event this is.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// Span opened.
    Begin,
    /// Span closed (matches the innermost open Begin on its track).
    End,
    /// A point-in-time marker (e.g. a steal, a lifecycle point).
    Instant,
    /// A sampled counter value (renders as a counter track in Perfetto).
    Counter(f64),
}

/// One recorded event on one track.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Event kind.
    pub kind: EventKind,
    /// Event name (span name, instant name, or counter series name).
    pub name: Cow<'static, str>,
    /// Nanoseconds since the tracer epoch.
    pub ts_ns: u64,
    /// Typed attributes.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

/// Bounded single-writer event buffer: oldest events are dropped (and
/// counted) once capacity is reached, so a runaway trace degrades instead
/// of exhausting memory.
struct Ring {
    events: std::collections::VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        Ring {
            events: std::collections::VecDeque::new(),
            capacity,
            dropped: 0,
        }
    }

    fn push(&mut self, ev: Event) {
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    fn take(&mut self) -> (Vec<Event>, u64) {
        let dropped = self.dropped;
        self.dropped = 0;
        (std::mem::take(&mut self.events).into(), dropped)
    }
}

struct TrackMeta {
    name: String,
    pid: u32,
    process_name: Option<String>,
}

/// One thread-owned (or explicitly pushed) event buffer.
struct TrackBuf {
    id: u64,
    meta: Mutex<TrackMeta>,
    ring: Mutex<Ring>,
}

struct Shared {
    enabled: AtomicBool,
    tracks: Mutex<Vec<Arc<TrackBuf>>>,
    next_track: AtomicU64,
    capacity: AtomicU64,
    /// Serializes tracing sessions ([`capture`] / [`session_lock`]): the
    /// tracer is process-global, so concurrent sessions would interleave.
    session: Mutex<()>,
}

fn shared() -> &'static Shared {
    static SHARED: OnceLock<Shared> = OnceLock::new();
    SHARED.get_or_init(|| Shared {
        enabled: AtomicBool::new(false),
        tracks: Mutex::new(Vec::new()),
        next_track: AtomicU64::new(1),
        capacity: AtomicU64::new(DEFAULT_TRACK_CAPACITY as u64),
        session: Mutex::new(()),
    })
}

/// Recover from a poisoned std lock: a worker that panicked mid-record
/// (e.g. the simulated JIT compiler bug) must not wedge the tracer.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

thread_local! {
    /// Stack of tracks for this thread; the top receives this thread's
    /// events. Lazily seeded with a default track named after the thread.
    static TRACK_STACK: RefCell<Vec<Arc<TrackBuf>>> = const { RefCell::new(Vec::new()) };
}

fn new_track(name: String, pid: u32, process_name: Option<String>) -> Arc<TrackBuf> {
    let sh = shared();
    let buf = Arc::new(TrackBuf {
        id: sh.next_track.fetch_add(1, Ordering::Relaxed),
        meta: Mutex::new(TrackMeta {
            name,
            pid,
            process_name,
        }),
        ring: Mutex::new(Ring::new(sh.capacity.load(Ordering::Relaxed) as usize)),
    });
    lock(&sh.tracks).push(buf.clone());
    buf
}

fn with_current_track(f: impl FnOnce(&TrackBuf)) {
    TRACK_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        if stack.is_empty() {
            let name = std::thread::current()
                .name()
                .map(ToString::to_string)
                .unwrap_or_else(|| format!("thread {:?}", std::thread::current().id()));
            stack.push(new_track(name, 1, None));
        }
        f(stack.last().expect("seeded above"));
    });
}

fn record(kind: EventKind, name: Cow<'static, str>, attrs: Vec<(&'static str, AttrValue)>) {
    let ts_ns = now_ns();
    with_current_track(|track| {
        lock(&track.ring).push(Event {
            kind,
            name,
            ts_ns,
            attrs,
        });
    });
}

/// Whether tracing is currently on. One relaxed atomic load — this is the
/// entire disabled-path cost of every instrumentation point.
#[inline]
pub fn enabled() -> bool {
    shared().enabled.load(Ordering::Relaxed)
}

/// Turns tracing on. Prefer [`capture`], which also serializes sessions
/// and drains the result.
pub fn enable() {
    epoch(); // pin the epoch before the first event
    shared().enabled.store(true, Ordering::SeqCst);
}

/// Turns tracing off. In-flight [`SpanGuard`]s stop recording their end
/// events; the assembler closes any such span at the trace end.
pub fn disable() {
    shared().enabled.store(false, Ordering::SeqCst);
}

/// Sets the per-track ring-buffer capacity for tracks created after this
/// call.
pub fn set_track_capacity(events: usize) {
    shared()
        .capacity
        .store(events.max(16) as u64, Ordering::Relaxed);
}

/// Renames the current thread's active track.
pub fn name_current_track(name: impl Into<String>) {
    if !enabled() {
        return;
    }
    let name = name.into();
    with_current_track(|track| lock(&track.meta).name = name);
}

/// RAII span: records End on drop. Inert guards (tracing disabled at
/// creation) record nothing.
#[must_use = "a span ends when its guard drops"]
pub struct SpanGuard {
    name: Option<Cow<'static, str>>,
}

impl SpanGuard {
    /// A guard that records nothing — the disabled-tracing path.
    pub fn inert() -> SpanGuard {
        SpanGuard { name: None }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(name) = self.name.take() {
            if enabled() {
                record(EventKind::End, name, Vec::new());
            }
        }
    }
}

/// Opens a span on the current thread's track. Near-free when tracing is
/// disabled (one atomic load, no allocation for `&'static str` names).
pub fn span(name: impl Into<Cow<'static, str>>) -> SpanGuard {
    if !enabled() {
        return SpanGuard::inert();
    }
    let name = name.into();
    record(EventKind::Begin, name.clone(), Vec::new());
    SpanGuard { name: Some(name) }
}

/// [`span`] with attributes attached to the begin event. Use the
/// [`span!`](crate::span!) macro to avoid building `attrs` while disabled.
pub fn span_attrs(
    name: impl Into<Cow<'static, str>>,
    attrs: Vec<(&'static str, AttrValue)>,
) -> SpanGuard {
    if !enabled() {
        return SpanGuard::inert();
    }
    let name = name.into();
    record(EventKind::Begin, name.clone(), attrs);
    SpanGuard { name: Some(name) }
}

/// Records a point-in-time marker on the current thread's track.
pub fn instant(name: impl Into<Cow<'static, str>>) {
    if enabled() {
        record(EventKind::Instant, name.into(), Vec::new());
    }
}

/// [`instant`] with attributes. Use the [`instant!`](crate::instant!)
/// macro to avoid building `attrs` while disabled.
pub fn instant_attrs(name: impl Into<Cow<'static, str>>, attrs: Vec<(&'static str, AttrValue)>) {
    if enabled() {
        record(EventKind::Instant, name.into(), attrs);
    }
}

/// Samples a counter series on the current thread's track (a counter
/// track in Perfetto).
pub fn counter(name: impl Into<Cow<'static, str>>, value: f64) {
    if enabled() {
        record(EventKind::Counter(value), name.into(), Vec::new());
    }
}

/// RAII handle for an explicitly pushed track (see [`track`]).
#[must_use = "the track pops when its guard drops"]
pub struct TrackGuard {
    armed: bool,
}

impl Drop for TrackGuard {
    fn drop(&mut self) {
        if self.armed {
            TRACK_STACK.with(|stack| {
                stack.borrow_mut().pop();
            });
        }
    }
}

/// Pushes a named track for the current thread: subsequent events on this
/// thread land on it until the guard drops. Used for pipeline workers
/// (`worker 3`) so each gets its own timeline row.
pub fn track(name: impl Into<String>) -> TrackGuard {
    track_in(1, None, name)
}

/// [`track`] under an explicit process: the fleet simulator gives every
/// simulated server its own pid so Perfetto renders one process group per
/// server.
pub fn track_in(pid: u32, process_name: Option<String>, name: impl Into<String>) -> TrackGuard {
    if !enabled() {
        return TrackGuard { armed: false };
    }
    let buf = new_track(name.into(), pid, process_name);
    TRACK_STACK.with(|stack| stack.borrow_mut().push(buf));
    TrackGuard { armed: true }
}

/// Collects every track's buffered events into a [`Trace`], clearing the
/// buffers. Tracks no longer referenced by any live thread are pruned from
/// the registry afterwards.
pub fn drain() -> Trace {
    let sh = shared();
    let mut tracks = lock(&sh.tracks);
    let mut dumps = Vec::new();
    let mut dropped = 0u64;
    for track in tracks.iter() {
        let (events, d) = lock(&track.ring).take();
        dropped += d;
        let meta = lock(&track.meta);
        if events.is_empty() {
            continue;
        }
        dumps.push(TrackDump {
            id: track.id,
            pid: meta.pid,
            name: meta.name.clone(),
            process_name: meta.process_name.clone(),
            events,
        });
    }
    // A track's thread holds one Arc via TLS; registry holds the other.
    // strong_count == 1 means the owning thread (or TrackGuard) is gone.
    tracks.retain(|t| Arc::strong_count(t) > 1);
    dumps.sort_by_key(|d| d.id);
    Trace {
        tracks: dumps,
        dropped,
    }
}

/// Guard holding the process-wide tracing session lock.
pub struct SessionGuard {
    _guard: MutexGuard<'static, ()>,
}

/// Acquires the tracing session lock without enabling tracing. Tests that
/// assert on the *absence* of events take this to keep a concurrent
/// [`capture`] from turning tracing on under them.
pub fn session_lock() -> SessionGuard {
    SessionGuard {
        _guard: lock(&shared().session),
    }
}

/// Runs `f` with tracing enabled and returns its result plus the trace:
/// takes the session lock, discards stale events, enables, runs, disables,
/// drains. All threads `f` spawns and joins are captured.
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, Trace) {
    let _session = session_lock();
    drop(drain()); // discard anything left from an interrupted session
    enable();
    let result = f();
    disable();
    (result, drain())
}
