//! Shared experiment plumbing for the benchmark harness and the `figures`
//! binary: one place that builds the bench-scale application, ground-truth
//! profiles and calibrated warmup parameters, so Criterion benches and the
//! figure regenerator measure exactly the same setups.

use fleet::{build_app_model, AppModel, WarmupParams};
use jumpstart::{build_package, JumpStartOptions, ProfilePackage, SeederInputs};
use workload::{generate, profile_run, App, AppParams, ProfileRun, RequestMix};

/// Everything the evaluation experiments share.
pub struct Lab {
    /// The generated application.
    pub app: App,
    /// The measured traffic mix (region 0, bucket 0).
    pub mix: RequestMix,
    /// Ground-truth profiling run over the mix.
    pub truth: ProfileRun,
    /// A shorter, independent run standing in for a C2 seeder's limited
    /// profiling window (partial coverage, like production).
    pub seeder_run: ProfileRun,
    /// Measured per-function model for the warmup simulation.
    pub model: AppModel,
}

impl Lab {
    /// Builds the standard bench-scale lab (deterministic).
    pub fn bench_scale() -> Lab {
        Lab::with_params(&AppParams::bench(), 600)
    }

    /// Builds a smaller lab for quick smoke runs.
    pub fn small() -> Lab {
        Lab::with_params(&AppParams::tiny(), 250)
    }

    /// Builds a lab from explicit parameters.
    pub fn with_params(params: &AppParams, profile_requests: usize) -> Lab {
        let app = generate(params);
        let mix = RequestMix::new(&app, 0, 0);
        let truth = profile_run(&app, &mix, profile_requests, 21);
        let seeder_run = profile_run(&app, &mix, (profile_requests / 4).max(50), 22);
        let model = build_app_model(&app, &truth);
        Lab {
            app,
            mix,
            truth,
            seeder_run,
            model,
        }
    }

    /// A seeder package from the C2-window profiling run.
    pub fn package(&self, opts: &JumpStartOptions) -> ProfilePackage {
        build_package(
            SeederInputs {
                repo: &self.app.repo,
                tier: self.seeder_run.tier.clone(),
                ctx: self.seeder_run.ctx.clone(),
                unit_order: self.seeder_run.unit_order.clone(),
                requests: self.seeder_run.requests,
                region: 0,
                bucket: 0,
                seeder_id: 1,
                now_ms: 0,
            },
            opts,
            &jit::JitOptions::default(),
        )
    }

    /// The calibrated Fig. 4 (10-minute) warmup parameters for this app.
    pub fn warmup_fig4(&self) -> WarmupParams {
        WarmupParams {
            init_ms_nojs: 90_000,
            init_ms_js: 48_000,
            deserialize_ms: 8_000,
            profile_serve_ms: 200_000,
            relocation_ms: 60_000,
            promote_calls: 200,
            ..WarmupParams::fig4()
        }
        .with_compile_window(&self.model, 230_000)
    }

    /// The calibrated Fig. 1/2 (30-minute) lifecycle parameters.
    pub fn warmup_fig1(&self) -> WarmupParams {
        WarmupParams {
            init_ms_nojs: 120_000,
            profile_serve_ms: 340_000,
            relocation_ms: 150_000,
            promote_calls: 300,
            ..WarmupParams::fig1()
        }
        .with_compile_window(&self.model, 420_000)
    }
}
