//! `jsstale` — stale-profile matching benchmark (§VII-C profile
//! longevity).
//!
//! Collects a profile on the base release of the bench application, churns
//! the sources at a sweep of rates (the workload crate's release model:
//! renames, deletions, insertions, reorders, block splits/merges), and
//! repairs the stale profile against each churned repo under three modes:
//!
//! * `full` — the v2 matcher: anchor-based multi-level CFG matching plus
//!   flow-conservation count inference,
//! * `drop` — drop every stale function (what a matcher-less consumer does),
//! * `greedy` — the v1 greedy in-order hash remap, for comparison.
//!
//! For each (rate, mode) it reports recovered counter-mass fraction, the
//! match-ladder histogram, and whether the repaired profile passes the
//! *strict* lint (flow conservation on) — repaired functions are held to
//! the same Kirchhoff standard as fresh ones. At one representative rate
//! it also boots a consumer on the churned repo from each repaired
//! package and replays traffic through the micro-architecture model, so
//! the counter-mass win is priced in steady-state CPI.
//!
//! Usage:
//!   jsstale           full run: small + bench sections, writes
//!                     BENCH_stale.json
//!   jsstale --small   small section only (quick), writes BENCH_stale.json
//!   jsstale --check   CI smoke: small sweep; asserts zero churn is a
//!                     no-op repair, every full-mode repair is flow-clean,
//!                     full-mode recovery dominates the drop baseline, and
//!                     recovery at churn 0.1 has not regressed below the
//!                     committed BENCH_stale.json. Writes nothing.

use analysis::{
    lint_profile_with, repair_profile_with, LintOptions, MatchMode, ProfileView, RepairOptions,
    RepairReport,
};
use jit::{Executor, ExecutorConfig, JitOptions};
use jumpstart::{build_package, consume, JumpStartOptions, SeederInputs};
use uarch::MissReport;
use workload::{
    generate, generate_release, profile_run, App, AppParams, ChurnParams, ChurnReport, ProfileRun,
    RequestMix, RequestSampler,
};

const RATES: [f64; 5] = [0.0, 0.05, 0.1, 0.2, 0.4];
const CHURN_SEED: u64 = 0xC0DE;
const UARCH_RATE: f64 = 0.1;
/// The acceptance floor: at churn 0.1 the full matcher must recover at
/// least this fraction of the pre-churn counter mass.
const MIN_RECOVERED_AT_0P1: f64 = 0.8;

const STRICT_LINT: LintOptions = LintOptions {
    flow_conservation: true,
    type_feasibility: false,
};

struct ModeRow {
    mode: &'static str,
    mass_after: u64,
    recovered: f64,
    report: RepairReport,
    flow_clean: bool,
}

struct RateRow {
    rate: f64,
    churn: ChurnReport,
    modes: Vec<ModeRow>,
}

struct UarchRow {
    mode: &'static str,
    compiled_funcs: usize,
    report: MissReport,
}

struct Section {
    lab: &'static str,
    mass_before: u64,
    sweep: Vec<RateRow>,
    uarch: Vec<UarchRow>,
}

/// Repairs a clone of the collected profile against `release` under
/// `mode` and grades the result.
fn repair_against(
    release: &App,
    run: &ProfileRun,
    mode: MatchMode,
    name: &'static str,
    mass_before: u64,
) -> (ModeRow, jit::TierProfile, jit::CtxProfile) {
    let mut tier = run.tier.clone();
    let mut ctx = run.ctx.clone();
    let report = repair_profile_with(&release.repo, &mut tier, &mut ctx, &RepairOptions { mode });
    let mass_after = tier.total_counter_mass();
    let errors = lint_profile_with(
        &release.repo,
        &ProfileView {
            tier: &tier,
            ctx: &ctx,
            unit_order: &[],
            prop_orders: &[],
            func_order: &[],
        },
        &STRICT_LINT,
    )
    .error_count();
    (
        ModeRow {
            mode: name,
            mass_after,
            recovered: mass_after as f64 / mass_before.max(1) as f64,
            report,
            flow_clean: errors == 0,
        },
        tier,
        ctx,
    )
}

/// Boots a consumer on the churned repo from a package carrying the
/// repaired profile, then replays traffic through the core model.
fn replay(
    release: &App,
    truth: &ProfileRun,
    tier: jit::TierProfile,
    ctx: jit::CtxProfile,
) -> (usize, MissReport) {
    let unit_order: Vec<bytecode::UnitId> = truth
        .unit_order
        .iter()
        .copied()
        .filter(|u| u.index() < release.repo.units().len())
        .collect();
    let opts = JumpStartOptions::default();
    let jit_opts = JitOptions::default();
    let pkg = build_package(
        SeederInputs {
            repo: &release.repo,
            tier,
            ctx,
            unit_order,
            requests: truth.requests,
            region: 0,
            bucket: 0,
            seeder_id: 1,
            now_ms: 0,
        },
        &opts,
        &jit_opts,
    );
    let outcome = consume(&release.repo, &pkg, jit_opts, &opts, 2).expect("repaired package boots");
    let mix = RequestMix::new(release, 0, 0);
    let mut executor = Executor::new(
        &release.repo,
        &outcome.engine.code_cache,
        &truth.tier,
        &truth.ctx,
        ExecutorConfig {
            seed: 0xD1CE,
            ..Default::default()
        },
    );
    executor.set_unit_order(&pkg.preload.unit_order);
    let mut sampler = RequestSampler::new(0x5EED);
    for _ in 0..150 {
        let (f, _) = sampler.request(release, &mix);
        executor.run_call(f);
    }
    executor.reset_stats();
    for _ in 0..600 {
        let (f, _) = sampler.request(release, &mix);
        executor.run_call(f);
    }
    (outcome.compiled_funcs, executor.report())
}

fn run_section(lab: &'static str, params: &AppParams, requests: usize) -> Section {
    eprintln!("[{lab}] generating base release + profile ({requests} requests)...");
    let base = generate(params);
    let mix = RequestMix::new(&base, 0, 0);
    let run = profile_run(&base, &mix, requests, 21);
    let mass_before = run.tier.total_counter_mass();

    let mut sweep = Vec::new();
    let mut uarch = Vec::new();
    for &rate in &RATES {
        let (release, churn) = generate_release(
            params,
            &ChurnParams {
                seed: CHURN_SEED,
                rate,
            },
        );
        let mut modes = Vec::new();
        for (mode, name) in [
            (MatchMode::Full, "full"),
            (MatchMode::DropStale, "drop"),
            (MatchMode::LegacyGreedy, "greedy"),
        ] {
            let (row, tier, ctx) = repair_against(&release, &run, mode, name, mass_before);
            println!(
                "[{lab}] rate={rate:<4} {name:>6}: recovered {:>5.1}% ({} repaired, {} dropped, flow {})",
                row.recovered * 100.0,
                row.report.repaired.len(),
                row.report.dropped.len(),
                if row.flow_clean { "clean" } else { "DIRTY" },
            );
            // Steady-state replay at the representative rate: price the
            // recovered mass in CPI on the churned release.
            if rate == UARCH_RATE && mode != MatchMode::LegacyGreedy {
                let truth = profile_run(&release, &RequestMix::new(&release, 0, 0), requests, 23);
                let (compiled_funcs, report) = replay(&release, &truth, tier, ctx);
                println!(
                    "[{lab}]   uarch {name}: {compiled_funcs} funcs, CPI {:.4}, icache misses {}",
                    report.cycles as f64 / report.instructions.max(1) as f64,
                    report.icache.misses,
                );
                uarch.push(UarchRow {
                    mode: name,
                    compiled_funcs,
                    report,
                });
            }
            modes.push(row);
        }
        sweep.push(RateRow { rate, churn, modes });
    }
    Section {
        lab,
        mass_before,
        sweep,
        uarch,
    }
}

fn recovered_at(section: &Section, rate: f64, mode: &str) -> f64 {
    section
        .sweep
        .iter()
        .find(|r| r.rate == rate)
        .and_then(|r| r.modes.iter().find(|m| m.mode == mode))
        .map(|m| m.recovered)
        .expect("sweep covers the rate")
}

fn mode_json(m: &ModeRow) -> String {
    let s = &m.report.stats;
    format!(
        concat!(
            "{{\"mode\": \"{}\", \"mass_after\": {}, \"recovered\": {:.4}, ",
            "\"funcs_repaired\": {}, \"funcs_dropped\": {}, \"pruned\": {}, \"flow_clean\": {}, ",
            "\"stats\": {{\"funcs_fresh\": {}, \"funcs_renamed\": {}, \"funcs_rebalanced\": {}, ",
            "\"blocks_exact\": {}, \"blocks_opcode\": {}, \"blocks_neighbor\": {}, ",
            "\"blocks_anchor\": {}, \"blocks_inferred\": {}, \"blocks_dropped\": {}, ",
            "\"mass_matched\": {}, \"mass_dropped\": {}, \"branches_synthesized\": {}}}}}"
        ),
        m.mode,
        m.mass_after,
        m.recovered,
        m.report.repaired.len(),
        m.report.dropped.len(),
        m.report.pruned,
        m.flow_clean,
        s.funcs_fresh,
        s.funcs_renamed,
        s.funcs_rebalanced,
        s.blocks_exact,
        s.blocks_opcode,
        s.blocks_neighbor,
        s.blocks_anchor,
        s.blocks_inferred,
        s.blocks_dropped,
        s.mass_matched,
        s.mass_dropped,
        s.branches_synthesized,
    )
}

fn section_json(s: &Section) -> String {
    let mut j = String::new();
    j.push_str(&format!(
        "{{\n      \"lab\": \"{}\",\n      \"mass_before\": {},\n      \"sweep\": [\n",
        s.lab, s.mass_before
    ));
    for (i, r) in s.sweep.iter().enumerate() {
        let c = &r.churn;
        j.push_str(&format!(
            concat!(
                "        {{\"rate\": {}, \"churn\": {{\"renamed\": {}, \"deleted\": {}, ",
                "\"inserted\": {}, \"files_reordered\": {}, \"branches_inserted\": {}, ",
                "\"cold_paths_removed\": {}}}, \"modes\": ["
            ),
            r.rate,
            c.funcs_renamed,
            c.funcs_deleted,
            c.funcs_inserted,
            c.files_reordered,
            c.branches_inserted,
            c.cold_paths_removed,
        ));
        for (k, m) in r.modes.iter().enumerate() {
            j.push_str(&mode_json(m));
            if k + 1 < r.modes.len() {
                j.push_str(", ");
            }
        }
        j.push_str(if i + 1 < s.sweep.len() {
            "]},\n"
        } else {
            "]}\n"
        });
    }
    j.push_str("      ],\n      \"uarch\": [\n");
    for (i, u) in s.uarch.iter().enumerate() {
        let r = &u.report;
        j.push_str(&format!(
            concat!(
                "        {{\"mode\": \"{}\", \"compiled_funcs\": {}, \"cycles\": {}, ",
                "\"instructions\": {}, \"cpi\": {:.4}, \"icache_misses\": {}, ",
                "\"dcache_misses\": {}, \"branch_misses\": {}, \"itlb_misses\": {}}}"
            ),
            u.mode,
            u.compiled_funcs,
            r.cycles,
            r.instructions,
            r.cycles as f64 / r.instructions.max(1) as f64,
            r.icache.misses,
            r.dcache.misses,
            r.branch.misses,
            r.itlb.misses,
        ));
        j.push_str(if i + 1 < s.uarch.len() { ",\n" } else { "\n" });
    }
    j.push_str("      ]\n    }");
    j
}

/// Pulls `"<key>": <float>` out of the committed baseline without a JSON
/// parser (the CI gate proper uses python's).
fn baseline_value(doc: &str, key: &str) -> Option<f64> {
    let at = doc.find(&format!("\"{key}\":"))?;
    let rest = &doc[at + key.len() + 3..];
    let end = rest.find([',', '\n', '}'])?;
    rest[..end].trim().parse().ok()
}

fn usage() -> ! {
    eprintln!("usage: jsstale [--small | --check]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut check = false;
    let mut small = false;
    for a in &args {
        match a.as_str() {
            "--check" => check = true,
            "--small" => small = true,
            bad => {
                eprintln!("jsstale: unknown argument `{bad}`");
                usage();
            }
        }
    }

    let small_section = run_section("small", &AppParams::tiny(), 250);

    if check {
        // Zero churn is the same release: repair must be a perfect no-op.
        let zero = &small_section.sweep[0];
        assert_eq!(zero.rate, 0.0);
        for m in &zero.modes {
            assert!(
                m.report.untouched(),
                "churn 0 must leave the profile untouched under {}: {:?}",
                m.mode,
                m.report
            );
            assert_eq!(m.mass_after, small_section.mass_before);
        }
        // Every full-mode repair ends flow-clean: inferred counts satisfy
        // the same Kirchhoff lint fresh profiles do.
        for r in &small_section.sweep {
            let full = r.modes.iter().find(|m| m.mode == "full").unwrap();
            assert!(
                full.flow_clean,
                "full repair at rate {} left flow-conservation errors",
                r.rate
            );
            let drop = r.modes.iter().find(|m| m.mode == "drop").unwrap();
            assert!(
                full.recovered >= drop.recovered,
                "full matcher recovered less than the drop baseline at rate {}: {:.3} < {:.3}",
                r.rate,
                full.recovered,
                drop.recovered
            );
        }
        let at_0p1 = recovered_at(&small_section, UARCH_RATE, "full");
        assert!(
            at_0p1 >= MIN_RECOVERED_AT_0P1,
            "full matcher recovered only {:.1}% at churn {UARCH_RATE} (floor {:.0}%)",
            at_0p1 * 100.0,
            MIN_RECOVERED_AT_0P1 * 100.0
        );
        println!(
            "check ok: churn 0 untouched, all full repairs flow-clean, full >= drop, {:.1}% recovered at churn {UARCH_RATE}",
            at_0p1 * 100.0
        );
        // Regression gate against the committed baseline (small section):
        // a matcher change must not lose already-achieved recovery.
        match std::fs::read_to_string("BENCH_stale.json") {
            Ok(doc) => {
                let committed = baseline_value(&doc, "small_recovered_at_0p1")
                    .expect("BENCH_stale.json has small_recovered_at_0p1");
                assert!(
                    at_0p1 >= committed - 0.02,
                    "recovered mass at churn {UARCH_RATE} regressed: {at_0p1:.4} vs committed {committed:.4}"
                );
                println!(
                    "check ok: recovery at churn {UARCH_RATE} holds the committed baseline ({at_0p1:.4} vs {committed:.4})"
                );
            }
            Err(_) => println!("check note: no committed BENCH_stale.json, baseline gate skipped"),
        }
        // The uarch replay ran and produced real measurements.
        for u in &small_section.uarch {
            assert!(u.report.instructions > 10_000, "{}: empty replay", u.mode);
            assert!(u.compiled_funcs > 0);
        }
        println!("check ok: steady-state replay measured for full and drop repairs");
        return;
    }

    let bench_section = if small {
        None
    } else {
        Some(run_section("bench", &AppParams::bench(), 600))
    };

    let small_at = recovered_at(&small_section, UARCH_RATE, "full");
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"stale\",\n");
    json.push_str(&format!("  \"churn_seed\": {CHURN_SEED},\n"));
    json.push_str(&format!(
        "  \"rates\": [{}],\n",
        RATES.map(|r| r.to_string()).join(", ")
    ));
    json.push_str(&format!("  \"small_recovered_at_0p1\": {small_at:.4},\n"));
    if let Some(b) = &bench_section {
        let bench_at = recovered_at(b, UARCH_RATE, "full");
        json.push_str(&format!("  \"bench_recovered_at_0p1\": {bench_at:.4},\n"));
    }
    json.push_str("  \"sections\": {\n    \"small\": ");
    json.push_str(&section_json(&small_section));
    if let Some(b) = &bench_section {
        json.push_str(",\n    \"bench\": ");
        json.push_str(&section_json(b));
    }
    json.push_str("\n  }\n}\n");
    std::fs::write("BENCH_stale.json", &json).expect("write BENCH_stale.json");
    println!("wrote BENCH_stale.json");
}
