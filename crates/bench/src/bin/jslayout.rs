//! `jslayout` — global code layout benchmark: huge-page packing and
//! whole-cache hot/cold splitting, priced in modeled iTLB and I-cache
//! misses.
//!
//! Sweeps the layout ablation ladder on one application:
//!
//! * `baseline`    — hotness-order function sort, no global plan (the
//!   pre-BOLT bump allocator),
//! * `c3`          — C3 inlining-aware function clustering, no global plan,
//! * `c3+hotcold`  — plus whole-cache cold exile: every function's cold
//!   part moves to the 4 KiB-page cold region behind an 8-byte stub,
//! * `c3+hotcold+hugepages` — plus 2 MiB huge-page packing of hot text
//!   (the full stack; `LayoutPlanOptions::default()`).
//!
//! Each ablation boots a consumer from a ground-truth package, replays
//! steady-state traffic through the two-level iTLB core model, and
//! reports miss rates, modeled IPC, and the packing accounting (stub
//! bytes, huge-page padding, hot bytes per huge page). Every ablation is
//! booted twice and its layout digest compared, so the committed numbers
//! double as a plan-determinism certificate.
//!
//! Usage:
//!   jslayout           full run at bench scale, writes BENCH_layout.json
//!   jslayout --small   same sweep on the small lab (quick)
//!   jslayout --check   CI smoke: small lab; asserts the kill switch
//!                      reproduces plain bump placement (no pads, no
//!                      stubs, hot region == code bytes), the full stack
//!                      does not regress iTLB misses vs either baseline,
//!                      and every ablation's plan is byte-identically
//!                      reproducible across two boots. Writes nothing.

use bench::Lab;
use jit::{Executor, ExecutorConfig, JitOptions};
use jumpstart::{build_package, consume, FuncSort, JumpStartOptions, SeederInputs};
use layout::LayoutPlanOptions;
use uarch::MissReport;
use workload::{RequestMix, RequestSampler};

const WARM_REQUESTS: usize = 600;
const MEASURE_REQUESTS: usize = 600;
const REPLAY_SEED: u64 = 0xD1CE;
const SAMPLER_SEED: u64 = 0x5EED;
const THREADS: usize = 2;

/// One rung of the ablation ladder.
struct Ablation {
    name: &'static str,
    js: JumpStartOptions,
    jit: JitOptions,
}

fn ablations() -> Vec<Ablation> {
    vec![
        Ablation {
            name: "baseline",
            js: JumpStartOptions {
                func_sort: FuncSort::SourceOrder,
                ..JumpStartOptions::default()
            },
            jit: JitOptions {
                plan: LayoutPlanOptions::disabled(),
                ..JitOptions::default()
            },
        },
        Ablation {
            name: "c3",
            js: JumpStartOptions::default(),
            jit: JitOptions {
                plan: LayoutPlanOptions::disabled(),
                ..JitOptions::default()
            },
        },
        Ablation {
            name: "c3+hotcold",
            js: JumpStartOptions::default(),
            jit: JitOptions {
                plan: LayoutPlanOptions {
                    hugepage_pack: false,
                    global_hotcold: true,
                },
                ..JitOptions::default()
            },
        },
        Ablation {
            name: "c3+hotcold+hugepages",
            js: JumpStartOptions::default(),
            jit: JitOptions::default(),
        },
    ]
}

/// One ablation's measurement.
struct Row {
    name: &'static str,
    plan: LayoutPlanOptions,
    compiled_funcs: usize,
    report: MissReport,
    /// Optimized hot-part code bytes (pure code: no stubs, no padding).
    hot_code_bytes: u64,
    /// Optimized cold-part code bytes.
    cold_code_bytes: u64,
    /// Hot→cold transfer stubs resident in hot text.
    stub_bytes: u64,
    /// Huge-page boundary padding inserted by the packer.
    pad_bytes: u64,
    /// Hot region fill (code + stubs + padding).
    hot_region_used: u64,
    /// OptimizedCold region fill (zero when the plan is off).
    cold_region_used: u64,
    huge_pages: u64,
    hot_bytes_per_huge_page: f64,
    digest: u64,
}

/// Boots a consumer from a ground-truth package under the ablation's
/// knobs and returns the code-cache layout digest (plan determinism).
fn boot_digest(lab: &Lab, a: &Ablation) -> u64 {
    let (_, outcome) = boot(lab, a);
    outcome.engine.code_cache.layout_digest()
}

fn boot<'a>(
    lab: &'a Lab,
    a: &Ablation,
) -> (jumpstart::ProfilePackage, jumpstart::ConsumerOutcome<'a>) {
    let pkg = build_package(
        SeederInputs {
            repo: &lab.app.repo,
            tier: lab.truth.tier.clone(),
            ctx: lab.truth.ctx.clone(),
            unit_order: lab.truth.unit_order.clone(),
            requests: lab.truth.requests,
            region: 0,
            bucket: 0,
            seeder_id: 1,
            now_ms: 0,
        },
        &a.js,
        &a.jit,
    );
    let outcome = consume(&lab.app.repo, &pkg, a.jit, &a.js, THREADS).expect("healthy boot");
    (pkg, outcome)
}

/// Boots and replays steady-state traffic through the core model.
fn run_ablation(lab: &Lab, a: &Ablation) -> Row {
    let (pkg, outcome) = boot(lab, a);
    let cc = &outcome.engine.code_cache;
    let stats = cc.pack_stats();
    let sizes = outcome.engine.sizes();

    let mix = RequestMix::new(&lab.app, 0, 0);
    let mut executor = Executor::new(
        &lab.app.repo,
        cc,
        &lab.truth.tier,
        &lab.truth.ctx,
        ExecutorConfig {
            seed: REPLAY_SEED,
            ..Default::default()
        },
    );
    executor.set_unit_order(&pkg.preload.unit_order);
    let mut sampler = RequestSampler::new(SAMPLER_SEED);
    for _ in 0..WARM_REQUESTS {
        let (f, _) = sampler.request(&lab.app, &mix);
        executor.run_call(f);
    }
    executor.reset_stats();
    for _ in 0..MEASURE_REQUESTS {
        let (f, _) = sampler.request(&lab.app, &mix);
        executor.run_call(f);
    }

    Row {
        name: a.name,
        plan: cc.plan_options(),
        compiled_funcs: outcome.compiled_funcs,
        report: executor.report(),
        hot_code_bytes: sizes.optimized_hot,
        cold_code_bytes: sizes.optimized_cold,
        stub_bytes: cc.stub_bytes(),
        pad_bytes: stats.pad_bytes,
        hot_region_used: cc.hot.used,
        cold_region_used: cc.optimized_cold.used,
        huge_pages: cc.huge_pages_used(),
        hot_bytes_per_huge_page: cc.hot_bytes_per_huge_page(),
        digest: cc.layout_digest(),
    }
}

fn ipc(r: &MissReport) -> f64 {
    r.instructions as f64 / r.cycles.max(1) as f64
}

fn row_json(r: &Row) -> String {
    let m = &r.report;
    format!(
        concat!(
            "{{\"name\": \"{}\", \"hugepage_pack\": {}, \"global_hotcold\": {}, ",
            "\"compiled_funcs\": {}, \"instructions\": {}, \"cycles\": {}, \"ipc\": {:.4}, ",
            "\"itlb_accesses\": {}, \"itlb_misses\": {}, \"itlb_miss_rate\": {:.6}, ",
            "\"itlb_walks\": {}, \"itlb_walk_mpki\": {:.4}, ",
            "\"icache_misses\": {}, \"icache_miss_rate\": {:.6}, ",
            "\"hot_code_bytes\": {}, \"cold_code_bytes\": {}, \"stub_bytes\": {}, ",
            "\"pad_bytes\": {}, \"hot_region_used\": {}, \"cold_region_used\": {}, ",
            "\"huge_pages\": {}, \"hot_bytes_per_huge_page\": {:.0}, ",
            "\"layout_digest\": \"{:#018x}\"}}"
        ),
        r.name,
        r.plan.hugepage_pack,
        r.plan.global_hotcold,
        r.compiled_funcs,
        m.instructions,
        m.cycles,
        ipc(m),
        m.itlb.accesses,
        m.itlb.misses,
        m.itlb.miss_rate(),
        m.itlb_l2.misses,
        m.itlb_l2.mpki(m.instructions),
        m.icache.misses,
        m.icache.miss_rate(),
        r.hot_code_bytes,
        r.cold_code_bytes,
        r.stub_bytes,
        r.pad_bytes,
        r.hot_region_used,
        r.cold_region_used,
        r.huge_pages,
        r.hot_bytes_per_huge_page,
        r.digest,
    )
}

fn find<'a>(rows: &'a [Row], name: &str) -> &'a Row {
    rows.iter().find(|r| r.name == name).expect("ablation row")
}

fn usage() -> ! {
    eprintln!("usage: jslayout [--small | --check]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut check = false;
    let mut small = false;
    for a in &args {
        match a.as_str() {
            "--check" => check = true,
            "--small" => small = true,
            bad => {
                eprintln!("jslayout: unknown argument `{bad}`");
                usage();
            }
        }
    }
    let small = check || small;

    let lab = if small {
        Lab::small()
    } else {
        Lab::bench_scale()
    };
    let lab_name = if small { "small" } else { "bench" };
    println!("jslayout: {lab_name} lab");

    let ladder = ablations();
    let mut rows = Vec::new();
    for a in &ladder {
        let row = run_ablation(&lab, a);
        println!(
            "{:>22}: IPC {:.4}, iTLB L1 {:>6} misses ({:.4}%), walks {:>5}, icache {:>6}, {} huge pages, {} stub B, {} pad B",
            row.name,
            ipc(&row.report),
            row.report.itlb.misses,
            row.report.itlb.miss_rate() * 100.0,
            row.report.itlb_l2.misses,
            row.report.icache.misses,
            row.huge_pages,
            row.stub_bytes,
            row.pad_bytes,
        );
        rows.push(row);
    }

    // Plan determinism: a second, independent boot of every ablation must
    // land every byte in the same place.
    let mut reproducible = true;
    for (a, row) in ladder.iter().zip(&rows) {
        let second = boot_digest(&lab, a);
        if second != row.digest {
            eprintln!(
                "{}: layout digest NOT reproducible ({:#x} vs {:#x})",
                a.name, row.digest, second
            );
            reproducible = false;
        }
    }
    println!(
        "plan determinism: {}",
        if reproducible {
            "all ablations byte-identical across two boots"
        } else {
            "FAILED"
        }
    );

    if check {
        assert!(reproducible, "layout plans must be reproducible");
        for r in &rows {
            assert!(r.report.instructions > 10_000, "{}: empty replay", r.name);
            assert!(r.compiled_funcs > 0);
        }
        // Kill switch = today's plain bump allocator: no boundary padding,
        // no stubs, no cold-region exile, and the hot region holds exactly
        // the emitted code bytes.
        for name in ["baseline", "c3"] {
            let r = find(&rows, name);
            assert_eq!(r.pad_bytes, 0, "{name}: disabled plan must not pad");
            assert_eq!(r.stub_bytes, 0, "{name}: disabled plan must not emit stubs");
            assert_eq!(
                r.cold_region_used, 0,
                "{name}: disabled plan must not exile cold parts"
            );
            assert_eq!(
                r.hot_region_used, r.hot_code_bytes,
                "{name}: disabled plan must place with a plain bump pointer"
            );
            assert_eq!(r.huge_pages, 0, "{name}: disabled plan models small pages");
        }
        println!("check ok: kill switch reproduces plain bump placement");
        // The full stack must not regress modeled iTLB behavior against
        // either baseline (small-lab code mostly fits, so this is a
        // no-regression gate; the strict win is gated on the committed
        // bench-scale BENCH_layout.json).
        let base = find(&rows, "baseline");
        let c3 = find(&rows, "c3");
        let full = find(&rows, "c3+hotcold+hugepages");
        assert!(
            full.report.itlb.miss_rate() <= base.report.itlb.miss_rate()
                && full.report.itlb.miss_rate() <= c3.report.itlb.miss_rate(),
            "full stack regressed the iTLB L1 miss rate: {:.6} vs base {:.6} / c3 {:.6}",
            full.report.itlb.miss_rate(),
            base.report.itlb.miss_rate(),
            c3.report.itlb.miss_rate(),
        );
        assert!(
            full.report.itlb_l2.misses <= base.report.itlb_l2.misses
                && full.report.itlb_l2.misses <= c3.report.itlb_l2.misses,
            "full stack regressed page walks: {} vs base {} / c3 {}",
            full.report.itlb_l2.misses,
            base.report.itlb_l2.misses,
            c3.report.itlb_l2.misses,
        );
        println!(
            "check ok: full stack iTLB ({} L1 misses, {} walks) <= baseline ({}, {}) and c3 ({}, {})",
            full.report.itlb.misses,
            full.report.itlb_l2.misses,
            base.report.itlb.misses,
            base.report.itlb_l2.misses,
            c3.report.itlb.misses,
            c3.report.itlb_l2.misses,
        );
        // Packing actually engaged: hot text is on huge pages and the
        // cold exile moved bytes behind stubs.
        assert!(full.huge_pages >= 1, "hot text must occupy huge pages");
        let hc = find(&rows, "c3+hotcold");
        assert!(
            hc.cold_region_used > 0 && hc.stub_bytes > 0,
            "global hot/cold must exile cold parts behind stubs"
        );
        println!(
            "check ok: full stack packs {} huge page(s)",
            full.huge_pages
        );
        return;
    }

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"layout\",\n");
    json.push_str(&format!("  \"lab\": \"{lab_name}\",\n"));
    json.push_str(&format!("  \"reproducible\": {reproducible},\n"));
    json.push_str(&format!(
        "  \"warm_requests\": {WARM_REQUESTS},\n  \"measure_requests\": {MEASURE_REQUESTS},\n"
    ));
    json.push_str("  \"ablations\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str("    ");
        json.push_str(&row_json(r));
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_layout.json", &json).expect("write BENCH_layout.json");
    println!("wrote BENCH_layout.json");
}
