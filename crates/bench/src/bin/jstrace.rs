//! `jstrace` — boot-trace analyzer for Chrome traces written by
//! `jsboot --trace` (or any trace from the telemetry crate).
//!
//! Reads the trace, pairs begin/end events per track, and reports:
//! the boot's phase critical path (decode → lint → prop slots →
//! pipeline), the top-N slowest function compiles, and per-worker stall
//! attribution (how much of the pipeline wall each worker spent busy).
//!
//! Usage:
//!   jstrace FILE              analyze a Chrome trace
//!   jstrace FILE --validate   schema-check only (CI gate): well-formed
//!                             JSON, matched B/E pairs, monotonic
//!                             timestamps per track. Exits nonzero on
//!                             any violation.
//!   jstrace FILE --top N      report the N slowest compiles (default 10)
//!   jstrace FILE --warmup     rebuild per-server warmup timelines from
//!                             the `rps_norm`/`latency_ms` counter series
//!                             and `serve-start` instants (the schema
//!                             `fleet::timelines_to_trace` writes) and
//!                             print PELT segment boundaries plus each
//!                             server's warmup classification. With
//!                             --validate, checks the warmup schema
//!                             instead of printing: every server track
//!                             must carry a serve-start instant and
//!                             aligned rps/latency series that classify
//!                             cleanly. Exits nonzero on any violation.

use std::collections::{BTreeMap, HashMap};

use fleet::{classify_timeline, Sample, Timeline, WarmupAnalysisParams};
use telemetry::json::{parse, Json};

/// One paired begin/end span, flattened out of the event stream.
struct FlatSpan {
    name: String,
    pid: u64,
    tid: u64,
    dur_us: f64,
    func: Option<u64>,
}

fn usage() -> ! {
    eprintln!("usage: jstrace FILE [--validate] [--top N] [--warmup]");
    std::process::exit(2);
}

/// One server track rebuilt from the fleet-trace counter schema.
#[derive(Default)]
struct ServerTrack {
    process_name: Option<String>,
    serve_start_ms: Option<u64>,
    /// Trace-clock timestamp (µs) of the serve-start instant, used to
    /// undo the exporter's rebase-to-zero and recover server-local time.
    serve_ts_us: Option<u64>,
    /// Counter series keyed by trace timestamp (µs): rebasing shifts all
    /// tracks by the same amount, so ordering and spacing survive.
    rps: BTreeMap<u64, f64>,
    latency: BTreeMap<u64, f64>,
    code: BTreeMap<u64, f64>,
}

/// Collects the warmup-view schema (`process_name` metadata,
/// `serve-start` instants, `rps_norm`/`latency_ms`/`code_bytes`
/// counters) per pid. Tracks without any rps samples are not servers
/// (e.g. a boot trace's span tracks) and are dropped.
fn collect_server_tracks(events: &[Json]) -> BTreeMap<u64, ServerTrack> {
    let mut tracks: BTreeMap<u64, ServerTrack> = BTreeMap::new();
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).unwrap_or("");
        let pid = ev.get("pid").and_then(Json::as_u64).unwrap_or(0);
        let name = ev.get("name").and_then(Json::as_str).unwrap_or("");
        let ts = ev.get("ts").and_then(Json::as_u64).unwrap_or(0);
        let arg = |key: &str| ev.get("args").and_then(|a| a.get(key));
        match (ph, name) {
            ("M", "process_name") => {
                if let Some(n) = arg("name").and_then(Json::as_str) {
                    tracks.entry(pid).or_default().process_name = Some(n.to_string());
                }
            }
            ("i", "serve-start") => {
                let t = tracks.entry(pid).or_default();
                t.serve_start_ms = arg("t_ms").and_then(Json::as_u64);
                t.serve_ts_us = Some(ts);
            }
            ("C", "rps_norm" | "latency_ms" | "code_bytes") => {
                let v = arg("value").and_then(Json::as_f64).unwrap_or(0.0);
                let t = tracks.entry(pid).or_default();
                match name {
                    "rps_norm" => t.rps.insert(ts, v),
                    "latency_ms" => t.latency.insert(ts, v),
                    _ => t.code.insert(ts, v),
                };
            }
            _ => {}
        }
    }
    tracks.retain(|_, t| !t.rps.is_empty());
    tracks
}

/// Rebuilds a [`Timeline`] in server-local milliseconds. The exporter
/// rebased every timestamp by the trace-wide minimum; the serve-start
/// instant carries its absolute time as an attribute, which pins the
/// offset exactly.
fn rebuild_timeline(track: &ServerTrack) -> Result<Timeline, String> {
    let serve_start_ms = track.serve_start_ms.ok_or("missing serve-start instant")?;
    let serve_ts_ms = track.serve_ts_us.unwrap_or(0) / 1_000;
    let offset_ms = serve_ts_ms.saturating_sub(serve_start_ms);
    if track.latency.len() != track.rps.len() {
        return Err(format!(
            "rps/latency series misaligned: {} vs {} samples",
            track.rps.len(),
            track.latency.len()
        ));
    }
    let mut samples = Vec::with_capacity(track.rps.len());
    for (&ts, &rps_norm) in &track.rps {
        let Some(&latency_ms) = track.latency.get(&ts) else {
            return Err(format!("latency sample missing at ts {ts} us"));
        };
        let t_ms = (ts / 1_000)
            .checked_sub(offset_ms)
            .ok_or("sample precedes the trace epoch")?;
        samples.push(Sample {
            t_ms,
            rps_norm,
            latency_ms,
            code_bytes: track.code.get(&ts).copied().unwrap_or(0.0) as u64,
        });
    }
    Ok(Timeline {
        samples,
        serve_start_ms,
        ..Default::default()
    })
}

/// The `--warmup` view: per-server segment boundaries and class. In
/// `strict` mode nothing is printed per server; the return value is the
/// number of schema violations (CI pins it to zero).
fn warmup_view(events: &[Json], strict: bool) -> usize {
    const MAX_PRINTED: usize = 12;
    let tracks = collect_server_tracks(events);
    if tracks.is_empty() {
        eprintln!("jstrace: no server tracks with rps_norm counters in this trace");
        return 1;
    }
    let params = WarmupAnalysisParams::default();
    let mut violations = 0;
    let mut printed = 0;
    println!(
        "\nwarmup classification ({} server track(s)):",
        tracks.len()
    );
    for (pid, track) in &tracks {
        let label = track
            .process_name
            .clone()
            .unwrap_or_else(|| format!("pid {pid}"));
        let tl = match rebuild_timeline(track) {
            Ok(tl) => tl,
            Err(e) => {
                eprintln!("  {label}: BAD TRACK: {e}");
                violations += 1;
                continue;
            }
        };
        let duration_ms = tl.samples.last().map_or(0, |s| s.t_ms);
        let verdict = classify_timeline(&tl, duration_ms, &params);
        let bounds = verdict.rps_boundaries_ms();
        if bounds.windows(2).any(|w| w[0] >= w[1]) {
            eprintln!("  {label}: BAD TRACK: non-monotonic segment boundaries {bounds:?}");
            violations += 1;
            continue;
        }
        if strict {
            continue;
        }
        if printed == MAX_PRINTED {
            println!("  ... and {} more", tracks.len() - MAX_PRINTED);
        }
        printed += 1;
        if printed > MAX_PRINTED {
            continue;
        }
        let mut segs = String::new();
        for (i, seg) in verdict.rps_segments.iter().enumerate() {
            if i > 0 {
                segs.push_str(" | ");
            }
            let start = verdict.times_ms[seg.start];
            let end = verdict.times_ms[seg.end - 1];
            let _ = std::fmt::Write::write_fmt(
                &mut segs,
                format_args!("{start}-{end} @{:.2}", seg.mean),
            );
        }
        let steady = verdict
            .steady_ms
            .map_or("-".to_string(), |t| format!("{t} ms"));
        println!(
            "  {label:<24} {:<16} steady {steady:<12} rps segments: [{segs}]",
            verdict.class.name(),
        );
    }
    if strict && violations == 0 {
        println!(
            "  warmup schema ok: {} server track(s) classified",
            tracks.len()
        );
    }
    violations
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file = None;
    let mut validate = false;
    let mut warmup = false;
    let mut top = 10usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--validate" => validate = true,
            "--warmup" => warmup = true,
            "--top" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => top = n,
                None => {
                    eprintln!("jstrace: --top needs a number");
                    usage();
                }
            },
            other if !other.starts_with('-') && file.is_none() => file = Some(other.to_string()),
            bad => {
                eprintln!("jstrace: unknown argument `{bad}`");
                usage();
            }
        }
    }
    let Some(file) = file else { usage() };
    let text = match std::fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("jstrace: cannot read {file}: {e}");
            std::process::exit(1);
        }
    };

    // Schema validation runs in both modes: analysis of a malformed
    // trace would silently misattribute time.
    let summary = match telemetry::validate_chrome(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("jstrace: {file} failed Chrome-trace validation: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "{file}: valid Chrome trace — {} events, {} tracks, {} span pairs, {} instants",
        summary.events, summary.tracks, summary.span_pairs, summary.instants
    );
    if warmup {
        let doc = parse(&text).expect("validated JSON parses");
        let events = doc
            .get("traceEvents")
            .unwrap_or(&doc)
            .as_arr()
            .expect("validated trace has an event array");
        let violations = warmup_view(events, validate);
        if violations > 0 {
            eprintln!("jstrace: {violations} warmup-schema violation(s) in {file}");
            std::process::exit(1);
        }
        return;
    }
    if validate {
        return;
    }

    let doc = parse(&text).expect("validated JSON parses");
    let events = doc
        .get("traceEvents")
        .unwrap_or(&doc)
        .as_arr()
        .expect("validated trace has an event array");

    // Pair B/E per (pid, tid) and pick up track names from metadata.
    type OpenSpan = (String, f64, Option<u64>);
    let mut stacks: HashMap<(u64, u64), Vec<OpenSpan>> = HashMap::new();
    let mut track_names: HashMap<(u64, u64), String> = HashMap::new();
    let mut spans: Vec<FlatSpan> = Vec::new();
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).unwrap_or("");
        let pid = ev.get("pid").and_then(Json::as_u64).unwrap_or(0);
        let tid = ev.get("tid").and_then(Json::as_u64).unwrap_or(0);
        let name = ev.get("name").and_then(Json::as_str).unwrap_or("");
        match ph {
            "M" if name == "thread_name" => {
                if let Some(n) = ev
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                {
                    track_names.insert((pid, tid), n.to_string());
                }
            }
            "B" => {
                let ts = ev.get("ts").and_then(Json::as_f64).unwrap_or(0.0);
                let func = ev
                    .get("args")
                    .and_then(|a| a.get("func"))
                    .and_then(Json::as_u64);
                stacks
                    .entry((pid, tid))
                    .or_default()
                    .push((name.to_string(), ts, func));
            }
            "E" => {
                let ts = ev.get("ts").and_then(Json::as_f64).unwrap_or(0.0);
                if let Some((name, start, func)) = stacks.get_mut(&(pid, tid)).and_then(Vec::pop) {
                    spans.push(FlatSpan {
                        name,
                        pid,
                        tid,
                        dur_us: ts - start,
                        func,
                    });
                }
            }
            _ => {}
        }
    }

    // Phase critical path: the sequential boot phases, in order.
    let phase_dur = |name: &str| -> Option<f64> {
        spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.dur_us)
            .fold(None, |m: Option<f64>, d| Some(m.map_or(d, |m| m.max(d))))
    };
    println!("\nboot critical path:");
    let mut total = 0.0;
    for phase in ["decode", "lint-repair", "prop-slots", "pipeline"] {
        if let Some(d) = phase_dur(phase) {
            total += d;
            println!("  {phase:<12} {d:>12.1} us");
        }
    }
    println!("  {:<12} {total:>12.1} us", "total");

    // Top-N slowest compiles.
    let mut compiles: Vec<&FlatSpan> = spans.iter().filter(|s| s.name == "compile").collect();
    compiles.sort_by(|a, b| b.dur_us.total_cmp(&a.dur_us));
    println!("\nslowest compiles (top {}):", top.min(compiles.len()));
    for s in compiles.iter().take(top) {
        let func = s.func.map_or_else(|| "?".to_string(), |f| f.to_string());
        let track = track_names
            .get(&(s.pid, s.tid))
            .cloned()
            .unwrap_or_else(|| format!("track {}", s.tid));
        println!("  func {func:<8} {:>10.1} us  on {track}", s.dur_us);
    }

    // Stall attribution: how much of the pipeline wall each worker spent
    // translating. The remainder is steal attempts, emitter waits, and
    // scheduling — the pipeline's coordination overhead.
    if let Some(pipeline_us) = phase_dur("pipeline") {
        let mut busy: HashMap<(u64, u64), (f64, usize)> = HashMap::new();
        for s in spans.iter().filter(|s| s.name == "compile") {
            let e = busy.entry((s.pid, s.tid)).or_insert((0.0, 0));
            e.0 += s.dur_us;
            e.1 += 1;
        }
        let mut rows: Vec<(&String, f64, usize)> = busy
            .iter()
            .filter_map(|(key, (us, n))| track_names.get(key).map(|name| (name, *us, *n)))
            .filter(|(name, _, _)| name.starts_with("worker"))
            .collect();
        rows.sort_by(|a, b| a.0.cmp(b.0));
        if !rows.is_empty() && pipeline_us > 0.0 {
            println!("\nworker stall attribution (pipeline wall {pipeline_us:.1} us):");
            for (name, us, n) in rows {
                let pct = us / pipeline_us * 100.0;
                println!("  {name:<10} {n:>5} compiles  {us:>10.1} us busy  ({pct:>5.1}% of wall)");
            }
        }
    }
}
