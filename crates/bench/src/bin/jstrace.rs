//! `jstrace` — boot-trace analyzer for Chrome traces written by
//! `jsboot --trace` (or any trace from the telemetry crate).
//!
//! Reads the trace, pairs begin/end events per track, and reports:
//! the boot's phase critical path (decode → lint → prop slots →
//! pipeline), the top-N slowest function compiles, and per-worker stall
//! attribution (how much of the pipeline wall each worker spent busy).
//!
//! Usage:
//!   jstrace FILE              analyze a Chrome trace
//!   jstrace FILE --validate   schema-check only (CI gate): well-formed
//!                             JSON, matched B/E pairs, monotonic
//!                             timestamps per track. Exits nonzero on
//!                             any violation.
//!   jstrace FILE --top N      report the N slowest compiles (default 10)

use std::collections::HashMap;

use telemetry::json::{parse, Json};

/// One paired begin/end span, flattened out of the event stream.
struct FlatSpan {
    name: String,
    pid: u64,
    tid: u64,
    dur_us: f64,
    func: Option<u64>,
}

fn usage() -> ! {
    eprintln!("usage: jstrace FILE [--validate] [--top N]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file = None;
    let mut validate = false;
    let mut top = 10usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--validate" => validate = true,
            "--top" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => top = n,
                None => {
                    eprintln!("jstrace: --top needs a number");
                    usage();
                }
            },
            other if !other.starts_with('-') && file.is_none() => file = Some(other.to_string()),
            bad => {
                eprintln!("jstrace: unknown argument `{bad}`");
                usage();
            }
        }
    }
    let Some(file) = file else { usage() };
    let text = match std::fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("jstrace: cannot read {file}: {e}");
            std::process::exit(1);
        }
    };

    // Schema validation runs in both modes: analysis of a malformed
    // trace would silently misattribute time.
    let summary = match telemetry::validate_chrome(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("jstrace: {file} failed Chrome-trace validation: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "{file}: valid Chrome trace — {} events, {} tracks, {} span pairs, {} instants",
        summary.events, summary.tracks, summary.span_pairs, summary.instants
    );
    if validate {
        return;
    }

    let doc = parse(&text).expect("validated JSON parses");
    let events = doc
        .get("traceEvents")
        .unwrap_or(&doc)
        .as_arr()
        .expect("validated trace has an event array");

    // Pair B/E per (pid, tid) and pick up track names from metadata.
    type OpenSpan = (String, f64, Option<u64>);
    let mut stacks: HashMap<(u64, u64), Vec<OpenSpan>> = HashMap::new();
    let mut track_names: HashMap<(u64, u64), String> = HashMap::new();
    let mut spans: Vec<FlatSpan> = Vec::new();
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).unwrap_or("");
        let pid = ev.get("pid").and_then(Json::as_u64).unwrap_or(0);
        let tid = ev.get("tid").and_then(Json::as_u64).unwrap_or(0);
        let name = ev.get("name").and_then(Json::as_str).unwrap_or("");
        match ph {
            "M" if name == "thread_name" => {
                if let Some(n) = ev
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                {
                    track_names.insert((pid, tid), n.to_string());
                }
            }
            "B" => {
                let ts = ev.get("ts").and_then(Json::as_f64).unwrap_or(0.0);
                let func = ev
                    .get("args")
                    .and_then(|a| a.get("func"))
                    .and_then(Json::as_u64);
                stacks
                    .entry((pid, tid))
                    .or_default()
                    .push((name.to_string(), ts, func));
            }
            "E" => {
                let ts = ev.get("ts").and_then(Json::as_f64).unwrap_or(0.0);
                if let Some((name, start, func)) = stacks.get_mut(&(pid, tid)).and_then(Vec::pop) {
                    spans.push(FlatSpan {
                        name,
                        pid,
                        tid,
                        dur_us: ts - start,
                        func,
                    });
                }
            }
            _ => {}
        }
    }

    // Phase critical path: the sequential boot phases, in order.
    let phase_dur = |name: &str| -> Option<f64> {
        spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.dur_us)
            .fold(None, |m: Option<f64>, d| Some(m.map_or(d, |m| m.max(d))))
    };
    println!("\nboot critical path:");
    let mut total = 0.0;
    for phase in ["decode", "lint-repair", "prop-slots", "pipeline"] {
        if let Some(d) = phase_dur(phase) {
            total += d;
            println!("  {phase:<12} {d:>12.1} us");
        }
    }
    println!("  {:<12} {total:>12.1} us", "total");

    // Top-N slowest compiles.
    let mut compiles: Vec<&FlatSpan> = spans.iter().filter(|s| s.name == "compile").collect();
    compiles.sort_by(|a, b| b.dur_us.total_cmp(&a.dur_us));
    println!("\nslowest compiles (top {}):", top.min(compiles.len()));
    for s in compiles.iter().take(top) {
        let func = s.func.map_or_else(|| "?".to_string(), |f| f.to_string());
        let track = track_names
            .get(&(s.pid, s.tid))
            .cloned()
            .unwrap_or_else(|| format!("track {}", s.tid));
        println!("  func {func:<8} {:>10.1} us  on {track}", s.dur_us);
    }

    // Stall attribution: how much of the pipeline wall each worker spent
    // translating. The remainder is steal attempts, emitter waits, and
    // scheduling — the pipeline's coordination overhead.
    if let Some(pipeline_us) = phase_dur("pipeline") {
        let mut busy: HashMap<(u64, u64), (f64, usize)> = HashMap::new();
        for s in spans.iter().filter(|s| s.name == "compile") {
            let e = busy.entry((s.pid, s.tid)).or_insert((0.0, 0));
            e.0 += s.dur_us;
            e.1 += 1;
        }
        let mut rows: Vec<(&String, f64, usize)> = busy
            .iter()
            .filter_map(|(key, (us, n))| track_names.get(key).map(|name| (name, *us, *n)))
            .filter(|(name, _, _)| name.starts_with("worker"))
            .collect();
        rows.sort_by(|a, b| a.0.cmp(b.0));
        if !rows.is_empty() && pipeline_us > 0.0 {
            println!("\nworker stall attribution (pipeline wall {pipeline_us:.1} us):");
            for (name, us, n) in rows {
                let pct = us / pipeline_us * 100.0;
                println!("  {name:<10} {n:>5} compiles  {us:>10.1} us busy  ({pct:>5.1}% of wall)");
            }
        }
    }
}
