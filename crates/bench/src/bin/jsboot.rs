//! `jsboot` — consumer boot benchmark: the pipelined work-stealing
//! translate/emit overlap of `jumpstart::consume`, measured end to end.
//!
//! Sweeps translation worker threads (1, 2, 4, 8) and the hottest-first
//! early-serve fraction on the bench-scale application, runs a
//! compile-caches-off control boot (digest-gated against the cached one),
//! prints each boot's phase timeline ([`BootStats::render`]) and writes
//! the machine-readable results to `BENCH_boot.json` in the current
//! directory.
//!
//! Usage:
//!   jsboot            full sweep at bench scale, writes BENCH_boot.json
//!   jsboot --small    same sweep on the small lab (quick)
//!   jsboot --check    CI smoke: small lab; asserts parallel and cache-off
//!                     boots stay byte-identical to sequential, that
//!                     translation sustains a minimum translated-bytes-
//!                     per-CPU-second rate, that decode time is measured,
//!                     and (only on >= 2 hardware cores) that the best
//!                     parallel throughput beats sequential. Writes
//!                     nothing. Exits nonzero on any violation.
//!   jsboot --trace F  additionally runs one traced parallel boot and
//!                     writes the Chrome trace (Perfetto-loadable, one
//!                     track per pipeline worker) to F. Composes with
//!                     --small / --check.

use bench::Lab;
use bytes::Bytes;
use jit::JitOptions;
use jumpstart::{consume_bytes, BootStats, ConsumerOutcome, JumpStartOptions};

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];
const EARLY_SWEEP: [f64; 4] = [0.25, 0.5, 0.75, 1.0];

fn boot<'a>(
    lab: &'a Lab,
    pkg_bytes: &Bytes,
    opts: &JumpStartOptions,
    threads: usize,
) -> ConsumerOutcome<'a> {
    // Boot from serialized bytes, as a real consumer does: the decode is
    // part of the measured boot (BootStats::decode_ns).
    consume_bytes(
        &lab.app.repo,
        pkg_bytes,
        JitOptions::default(),
        opts,
        threads,
    )
    .expect("healthy package boots")
}

fn usage() -> ! {
    eprintln!("usage: jsboot [--small | --check] [--trace FILE]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut check = false;
    let mut small = false;
    let mut trace_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => check = true,
            "--small" => small = true,
            "--trace" => match it.next() {
                Some(p) => trace_path = Some(p.clone()),
                None => {
                    eprintln!("jsboot: --trace needs a file argument");
                    usage();
                }
            },
            bad => {
                eprintln!("jsboot: unknown argument `{bad}`");
                usage();
            }
        }
    }
    let small = check || small;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let lab = if small {
        Lab::small()
    } else {
        Lab::bench_scale()
    };
    let pkg = lab.package(&JumpStartOptions::default());
    let pkg = pkg.serialize();
    println!(
        "jsboot: {} lab, {} hardware cores",
        if small { "small" } else { "bench-scale" },
        cores
    );

    // Thread sweep: classic compile-all boot at each worker count.
    let mut thread_boots: Vec<BootStats> = Vec::new();
    let baseline = boot(&lab, &pkg, &JumpStartOptions::default(), 1);
    let baseline_digest = baseline.engine.code_cache.layout_digest();

    // Cache-off control: the compile caches (inline-body templates +
    // layout plans) are exact memoization, so a boot without them must
    // emit a byte-identical code cache. This is the digest gate the
    // caches' correctness story rests on.
    let uncached = boot(
        &lab,
        &pkg,
        &JumpStartOptions {
            compile_caches: false,
            ..Default::default()
        },
        1,
    );
    assert_eq!(
        uncached.engine.code_cache.layout_digest(),
        baseline_digest,
        "cached boot must be byte-identical to the uncached boot"
    );
    println!("--- compile_caches=off (threads=1, control) ---");
    print!("{}", uncached.boot.render());
    let uncached_boot = uncached.boot;
    for &threads in &THREAD_SWEEP {
        let out = if threads == 1 {
            boot(&lab, &pkg, &JumpStartOptions::default(), 1)
        } else {
            let out = boot(&lab, &pkg, &JumpStartOptions::default(), threads);
            assert_eq!(
                out.engine.code_cache.layout_digest(),
                baseline_digest,
                "parallel boot ({threads} threads) must be byte-identical to sequential"
            );
            out
        };
        println!("--- threads={threads} ---");
        print!("{}", out.boot.render());
        thread_boots.push(out.boot);
    }

    // Early-serve sweep: hottest-first threshold at a fixed worker count.
    let es_threads = 4;
    let mut early_boots: Vec<BootStats> = Vec::new();
    for &frac in &EARLY_SWEEP {
        let opts = JumpStartOptions {
            early_serve_frac: frac,
            ..Default::default()
        };
        let out = boot(&lab, &pkg, &opts, es_threads);
        assert_eq!(
            out.engine.code_cache.layout_digest(),
            baseline_digest,
            "early-serve frac={frac} must not change the final layout"
        );
        println!("--- early_serve_frac={frac} (threads={es_threads}) ---");
        print!("{}", out.boot.render());
        early_boots.push(out.boot);
    }

    // Traced boot: one representative parallel boot with the tracer on,
    // exported as a Chrome trace (chrome://tracing or ui.perfetto.dev).
    if let Some(path) = &trace_path {
        let (out, trace) =
            telemetry::capture(|| boot(&lab, &pkg, &JumpStartOptions::default(), es_threads));
        assert_eq!(
            out.engine.code_cache.layout_digest(),
            baseline_digest,
            "traced boot must not perturb the layout"
        );
        let chrome = trace.to_chrome_json();
        std::fs::write(path, &chrome).expect("write trace file");
        println!(
            "wrote {path}: {} events on {} tracks ({} dropped)",
            trace.event_count(),
            trace.tracks.len(),
            trace.dropped
        );
    }

    if check {
        assert!(
            thread_boots[0].decode_ns > 0,
            "boot must decode the serialized package (decode_ns was 0)"
        );
        println!(
            "check ok: decode measured ({} ns sequential)",
            thread_boots[0].decode_ns
        );
        let seq = thread_boots[0].bytes_per_sec();
        let best = thread_boots
            .iter()
            .map(|b| b.bytes_per_sec())
            .fold(0.0f64, f64::max);
        if cores >= 2 {
            assert!(
                best >= seq,
                "parallel boot throughput ({best:.0} B/s) fell below sequential ({seq:.0} B/s) on {cores} cores"
            );
            println!("check ok: best parallel {best:.0} B/s >= sequential {seq:.0} B/s");
        } else {
            println!(
                "check ok: single hardware core, throughput comparison skipped (sequential {seq:.0} B/s)"
            );
        }
        // Compile-cost regression floor: translated bytes per CPU-second
        // of translation work (worker busy time, so the figure is
        // thread-count-invariant). The small lab sustains well over
        // 10 MB per CPU-second with the compile caches on; the floor sits
        // far enough below that to absorb slow or shared CI hosts while
        // still catching an accidental return to per-site re-translation
        // or per-unit Ext-TSP re-planning (an order of magnitude, not
        // tens of percent).
        const MIN_CPU_BYTES_PER_SEC: f64 = 2.0e6;
        let busy = thread_boots[0].worker_busy_ns().max(1);
        let cpu_rate = thread_boots[0].compile_bytes as f64 * 1e9 / busy as f64;
        assert!(
            cpu_rate >= MIN_CPU_BYTES_PER_SEC,
            "translation throughput {cpu_rate:.0} B per CPU-second fell below the {MIN_CPU_BYTES_PER_SEC:.0} floor"
        );
        println!(
            "check ok: {cpu_rate:.0} translated bytes per CPU-second (floor {MIN_CPU_BYTES_PER_SEC:.0})"
        );
        println!("check ok: cache-off control boot byte-identical to the cached boot");
        println!("check ok: all parallel and early-serve boots byte-identical to sequential");
        return;
    }

    // Machine-readable results for the committed baseline.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"boot\",\n");
    json.push_str(&format!("  \"cores\": {cores},\n"));
    json.push_str(&format!(
        "  \"lab\": \"{}\",\n",
        if small { "small" } else { "bench" }
    ));
    // The global layout plan these boots ran under (the §V fleet kill
    // switch): placement is only comparable across runs with equal knobs.
    let plan = JitOptions::default().plan;
    json.push_str(&format!(
        "  \"layout_options\": {{\"hugepage_pack\": {}, \"global_hotcold\": {}}},\n",
        plan.hugepage_pack, plan.global_hotcold
    ));
    json.push_str(&format!(
        "  \"compiled_funcs\": {},\n  \"compile_bytes\": {},\n",
        thread_boots[0].compiled_funcs, thread_boots[0].compile_bytes
    ));
    // Distribution accounting: what a consumer pulls over the wire, and
    // what decoding it costs per megabyte (sequential boot).
    json.push_str(&format!(
        "  \"package_bytes\": {},\n  \"decode_ns_per_mb\": {:.0},\n",
        pkg.len(),
        thread_boots[0].decode_ns as f64 * 1e6 / pkg.len().max(1) as f64
    ));
    json.push_str("  \"uncached_sequential\": ");
    json.push_str(&uncached_boot.to_json());
    json.push_str(",\n");
    json.push_str("  \"thread_sweep\": [\n");
    for (i, b) in thread_boots.iter().enumerate() {
        json.push_str("    ");
        json.push_str(&b.to_json());
        json.push_str(if i + 1 < thread_boots.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n");
    json.push_str("  \"early_serve_sweep\": [\n");
    for (i, b) in early_boots.iter().enumerate() {
        json.push_str("    ");
        json.push_str(&b.to_json());
        json.push_str(if i + 1 < early_boots.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_boot.json", &json).expect("write BENCH_boot.json");
    println!("wrote BENCH_boot.json");

    let seq = thread_boots[0].bytes_per_sec();
    println!(
        "caches off: {:.2} MB/s ({:.2}x vs cached sequential)",
        uncached_boot.bytes_per_sec() / 1e6,
        uncached_boot.bytes_per_sec() / seq.max(1.0)
    );
    for (t, b) in THREAD_SWEEP.iter().zip(&thread_boots) {
        println!(
            "threads={t}: {:.2} MB/s ({:.2}x vs sequential)",
            b.bytes_per_sec() / 1e6,
            b.bytes_per_sec() / seq.max(1.0)
        );
    }
}
