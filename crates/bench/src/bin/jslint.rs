//! `jslint` — static lint of a Jump-Start profile package (§VI).
//!
//! The `analysis` crate's profile linter decides, without compiling or
//! booting anything, whether a package's profile data can possibly
//! describe the deployed repo. This tool runs it against the bench-scale
//! application and prints severity-ranked diagnostics.
//!
//! Usage:
//!   jslint            lint a freshly built package (expected clean)
//!   jslint --full     same, at full bench scale instead of the small lab
//!   jslint --demo     inject one corruption of each class the acceptance
//!                     criteria name (dangling id, flow-conservation
//!                     violation, stale CFG) and verify the linter flags
//!                     each AND the seeder validator rejects each as a
//!                     static-lint failure. Exits nonzero on any miss.

use analysis::{lint_profile, LintReport, ProfileView, Rule};
use bytecode::FuncId;
use jit::JitOptions;
use jumpstart::{JumpStartOptions, ProfilePackage, ValidationError, Validator};

fn view(pkg: &ProfilePackage) -> ProfileView<'_> {
    ProfileView {
        tier: &pkg.tier,
        ctx: &pkg.ctx,
        unit_order: &pkg.preload.unit_order,
        prop_orders: &pkg.prop_orders,
        func_order: &pkg.func_order,
    }
}

fn print_report(report: &LintReport) {
    for d in &report.diagnostics {
        println!("  {d}");
    }
    println!(
        "  -> {} errors, {} warnings",
        report.error_count(),
        report.warning_count()
    );
}

/// One injected corruption: a name, a mutation, and the rule it must trip.
struct Corruption {
    name: &'static str,
    rule: Rule,
    mutate: fn(&mut ProfilePackage),
}

fn inject_dangling_id(pkg: &mut ProfilePackage) {
    // Reference a function id past the end of the repo's function table,
    // as if the profile came from a build with more functions.
    let max = pkg.tier.funcs.keys().map(|f| f.0).max().unwrap_or(0);
    let donor = pkg.tier.funcs.values().next().unwrap().clone();
    pkg.tier.funcs.insert(FuncId::new(max + 10_000), donor);
}

fn inject_flow_violation(pkg: &mut ProfilePackage) {
    // Perturb one block counter so inflow no longer matches the block's
    // own count (a Kirchhoff violation — bit flip / torn write model).
    let prof = pkg
        .tier
        .funcs
        .values_mut()
        .find(|p| p.block_counts.len() >= 2 && p.block_counts.iter().sum::<u64>() > 0)
        .expect("lab profile has a multi-block function");
    let last = prof.block_counts.len() - 1;
    prof.block_counts[last] += 987_654_321;
}

fn inject_stale_cfg(pkg: &mut ProfilePackage) {
    // Flip a block hash: the profile claims it was collected against a
    // different body for this function (source changed between builds).
    let prof = pkg
        .tier
        .funcs
        .values_mut()
        .find(|p| !p.block_hashes.is_empty())
        .expect("lab profile stores block hashes");
    prof.block_hashes[0] ^= 0xdead_beef;
}

const CORRUPTIONS: &[Corruption] = &[
    Corruption {
        name: "dangling FuncId",
        rule: Rule::DanglingId,
        mutate: inject_dangling_id,
    },
    Corruption {
        name: "flow-conservation violation",
        rule: Rule::FlowConservation,
        mutate: inject_flow_violation,
    },
    Corruption {
        name: "stale CFG (hash mismatch)",
        rule: Rule::StaleCounts,
        mutate: inject_stale_cfg,
    },
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let demo = args.iter().any(|a| a == "--demo");
    let full = args.iter().any(|a| a == "--full");

    eprintln!(
        "building {} lab...",
        if full { "bench-scale" } else { "small" }
    );
    let lab = if full {
        bench::Lab::bench_scale()
    } else {
        bench::Lab::small()
    };
    let opts = JumpStartOptions::default();
    let pkg = lab.package(&opts);

    println!(
        "linting fresh package: {} funcs profiled, {} ctx branches, {} units",
        pkg.tier.profiled_count(),
        pkg.ctx.branches.len(),
        pkg.preload.unit_order.len()
    );
    let report = lint_profile(&lab.app.repo, &view(&pkg));
    print_report(&report);
    if !report.is_clean() {
        eprintln!("FAIL: fresh seeder package should lint clean");
        std::process::exit(1);
    }
    println!("fresh package is clean");

    if !demo {
        return;
    }

    // Demo: each corruption class must be (a) flagged by the linter with
    // the expected rule and (b) rejected by the seeder validator as a
    // static-lint failure — before any validation compile or smoke boot.
    let validator = Validator::new(
        JumpStartOptions {
            min_funcs_profiled: 1,
            min_counter_mass: 1,
            min_requests: 1,
            ..opts
        },
        JitOptions::default(),
    );
    let mut missed = 0;
    for c in CORRUPTIONS {
        println!("\n=== corruption: {} ===", c.name);
        let mut bad = pkg.clone();
        (c.mutate)(&mut bad);

        let report = lint_profile(&lab.app.repo, &view(&bad));
        print_report(&report);
        let flagged = report.diagnostics.iter().any(|d| d.rule == c.rule);
        if !flagged {
            eprintln!("MISS: linter did not report {:?}", c.rule);
            missed += 1;
            continue;
        }

        match validator.validate_package(&lab.app.repo, &bad, 0) {
            Err(ValidationError::Static { errors, first }) => {
                println!("validator: rejected ({errors} static errors; first: {first})");
            }
            other => {
                eprintln!("MISS: validator returned {other:?} instead of a static-lint rejection");
                missed += 1;
            }
        }
    }

    if missed > 0 {
        eprintln!("\nFAIL: {missed} corruption class(es) went undetected");
        std::process::exit(1);
    }
    println!(
        "\nall {} corruption classes detected and rejected statically",
        CORRUPTIONS.len()
    );

    // Stale-release demo: churn the app into a new release and surface
    // what the repairer did — the per-rung match histogram plus the
    // flow-inference counts — then hold the result to the strict lint.
    println!("\n=== stale release: repair report ===");
    let (release, churn) = workload::generate_release(
        &lab.app.params,
        &workload::ChurnParams {
            seed: 0xC0DE,
            rate: 0.1,
        },
    );
    println!(
        "churn: {} renamed, {} deleted, {} inserted, {} files reordered, {} branches inserted, {} cold paths removed",
        churn.funcs_renamed,
        churn.funcs_deleted,
        churn.funcs_inserted,
        churn.files_reordered,
        churn.branches_inserted,
        churn.cold_paths_removed
    );
    let mut tier = pkg.tier.clone();
    let mut ctx = pkg.ctx.clone();
    let report = analysis::repair_profile(&release.repo, &mut tier, &mut ctx);
    let s = &report.stats;
    println!(
        "repair: {} repaired, {} dropped, {} counters pruned",
        report.repaired.len(),
        report.dropped.len(),
        report.pruned
    );
    println!(
        "  funcs: {} fresh, {} renamed, {} rebalanced",
        s.funcs_fresh, s.funcs_renamed, s.funcs_rebalanced
    );
    println!(
        "  blocks: {} exact, {} opcode, {} neighbor, {} anchor, {} inferred, {} dropped",
        s.blocks_exact,
        s.blocks_opcode,
        s.blocks_neighbor,
        s.blocks_anchor,
        s.blocks_inferred,
        s.blocks_dropped
    );
    println!(
        "  mass: {} matched, {} dropped; {} branches synthesized",
        s.mass_matched, s.mass_dropped, s.branches_synthesized
    );
    let strict = analysis::lint_profile_with(
        &release.repo,
        &ProfileView {
            tier: &tier,
            ctx: &ctx,
            unit_order: &[],
            prop_orders: &[],
            func_order: &[],
        },
        &analysis::LintOptions {
            flow_conservation: true,
            type_feasibility: false,
        },
    );
    if strict.error_count() > 0 {
        for d in strict.errors().take(5) {
            eprintln!("  {d}");
        }
        eprintln!("FAIL: repaired profile must pass the strict (flow) lint");
        std::process::exit(1);
    }
    println!("repaired profile passes the strict lint (flow conservation on)");
}
