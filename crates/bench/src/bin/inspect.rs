//! `inspect` — dump the contents of a serialized Jump-Start package.
//!
//! The §III/§VI debugging workflow: problematic packages are stored in a
//! database so engineers can reproduce JIT issues; this tool is the first
//! step, showing what a package contains without needing the repo it was
//! built against.
//!
//! Usage: `inspect <package-file>`; with no argument it builds a demo
//! package in memory and inspects that.

use jumpstart::{JumpStartOptions, ProfilePackage};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bytes = match std::env::args().nth(1) {
        Some(path) => std::fs::read(path)?,
        None => {
            eprintln!("(no file given; inspecting a freshly built demo package)");
            let lab = bench::Lab::small();
            lab.package(&JumpStartOptions::default())
                .serialize()
                .to_vec()
        }
    };
    let pkg = ProfilePackage::deserialize(&bytes)?;

    println!("package: {} bytes on the wire", bytes.len());
    println!(
        "meta: region {} bucket {} seeder {} created {} ms poison {:?}",
        pkg.meta.region, pkg.meta.bucket, pkg.meta.seeder_id, pkg.meta.created_ms, pkg.meta.poison
    );
    println!(
        "coverage: {} funcs profiled, {} counter mass, {} requests",
        pkg.meta.coverage.funcs_profiled,
        pkg.meta.coverage.counter_mass,
        pkg.meta.coverage.requests
    );
    println!(
        "\ncategory 1 (repo preload): {} units in load order",
        pkg.preload.unit_order.len()
    );
    println!(
        "category 2 (tier-1 JIT profile): {} functions, {} block counters",
        pkg.tier.profiled_count(),
        pkg.tier
            .funcs
            .values()
            .map(|f| f.block_counts.len())
            .sum::<usize>()
    );
    let call_sites: usize = pkg.tier.funcs.values().map(|f| f.call_targets.len()).sum();
    let type_points: usize = pkg.tier.funcs.values().map(|f| f.types.len()).sum();
    println!("  call-target profiles: {call_sites} sites; type profiles: {type_points} points");
    println!(
        "category 3 (optimized-code profile): {} context-sensitive branches, {} entries",
        pkg.ctx.branches.len(),
        pkg.ctx.entries.len()
    );
    println!(
        "category 4 (intermediate results): function order of {}, property orders for {} classes",
        pkg.func_order.len(),
        pkg.prop_orders.len()
    );

    // Top functions by counter mass.
    let mut heat: Vec<_> = pkg
        .tier
        .funcs
        .iter()
        .map(|(f, p)| (*f, p.block_counts.iter().sum::<u64>(), p.enter_count))
        .collect();
    heat.sort_by_key(|&(_, mass, _)| std::cmp::Reverse(mass));
    println!("\nhottest functions (by block-counter mass):");
    for (f, mass, enters) in heat.iter().take(10) {
        println!("  {f}: mass {mass}, {enters} entries");
    }
    Ok(())
}
