//! `jsstore` — content-addressed chunk store benchmark: delta
//! distribution and chunk-lazy decode, measured end to end.
//!
//! Three sections, all on consecutive releases of the bench application
//! (the workload crate's churn model: renames, deletions, insertions,
//! reorders, block splits/merges):
//!
//! * **Round-trip + delta sweep.** At each churn rate, the new release's
//!   package is chunked, reassembled from its chunk pool, and the result
//!   digest-checked byte-identical against the monolithic encoding. The
//!   same manifest is then delta-encoded against a consumer cache holding
//!   the previous release's chunks: bytes-on-wire vs the full package,
//!   chunks reused vs shipped.
//! * **Lazy decode.** A chunk-granular boot at `early_serve_frac=0.25`
//!   vs the monolithic boot on the same package: fraction of payload
//!   bytes decoded before serve-start, decode time split hot/cold, and a
//!   layout-digest proof that laziness never changes the emitted code.
//! * **Fleet distribution.** A small deployment with the per-cell link
//!   model on: chunk deltas vs full-package sends, download times, and
//!   time-to-early-serve across the fleet.
//!
//! Usage:
//!   jsstore           full run at bench scale, writes BENCH_store.json
//!   jsstore --small   small lab only (quick), writes BENCH_store.json
//!   jsstore --check   CI smoke on the small lab; asserts every
//!                     round-trip is byte-identical, the churn-0.1 delta
//!                     is under the wire-ratio ceiling, the frac=0.25
//!                     lazy boot stays under the small-lab decode ceiling
//!                     and matches the monolithic layout digest, and the
//!                     fleet distribution plan is shard-invariant.
//!                     Writes nothing. Exits nonzero on any violation.
//!                     (The <50% pre-serve decode criterion is enforced
//!                     at bench scale by ci.sh on BENCH_store.json.)

use fleet::{
    run_deployment_with_prior, DeployParams, DistributionParams, FaultPlan, FleetShape,
    WarmupParams,
};
use jit::JitOptions;
use jumpstart::{
    build_package, chunk_package, consume, consume_chunked, crc32, delta_against, reassemble,
    ChunkPool, ChunkedPackage, JumpStartOptions, ProfilePackage, SeederInputs,
};
use workload::{
    generate_release, profile_run, App, AppParams, ChurnParams, ChurnReport, RequestMix,
};

const RATES: [f64; 4] = [0.0, 0.05, 0.1, 0.2];
const CHURN_SEED: u64 = 0xC0DE;
const PROFILE_SEED: u64 = 21;
const EARLY_FRAC: f64 = 0.25;
/// Acceptance ceiling: at churn 0.1 a delta push ships at most this
/// fraction of the full-package bytes.
const MAX_WIRE_RATIO_AT_0P1: f64 = 0.40;
/// Acceptance ceiling: a frac=0.25 lazy boot decodes less than this
/// fraction of the payload before serve-start (bench lab; enforced by
/// ci.sh against the committed BENCH_store.json).
const MAX_EARLY_DECODE_FRAC: f64 = 0.50;
/// The small lab's call graph is dense enough that the frac=0.25 hot
/// closure reaches most chunks, so `--check` uses a looser ceiling there;
/// it still catches a lazy path that decodes everything up front.
const MAX_EARLY_DECODE_FRAC_SMALL: f64 = 0.75;

/// One seeder's package for a release: same profiling seed on every
/// release, so a consumer cache from the previous release is exactly what
/// the same seeder fleet would have published there.
fn package_for(app: &App, requests: usize) -> ProfilePackage {
    let mix = RequestMix::new(app, 0, 0);
    let run = profile_run(app, &mix, requests, PROFILE_SEED);
    build_package(
        SeederInputs {
            repo: &app.repo,
            tier: run.tier,
            ctx: run.ctx,
            unit_order: run.unit_order,
            requests: run.requests,
            region: 0,
            bucket: 0,
            seeder_id: 1,
            now_ms: 0,
        },
        &JumpStartOptions::default(),
        &JitOptions::default(),
    )
}

fn pool_of(cp: &ChunkedPackage) -> ChunkPool {
    let mut pool = ChunkPool::new();
    for c in &cp.chunks {
        pool.insert(c);
    }
    pool
}

struct DeltaRow {
    rate: f64,
    churn: ChurnReport,
    bytes_full: u64,
    wire_bytes: u64,
    manifest_bytes: u64,
    chunks_sent: usize,
    chunks_reused: usize,
    roundtrip_digest: u32,
    monolithic_digest: u32,
}

impl DeltaRow {
    fn wire_ratio(&self) -> f64 {
        self.wire_bytes as f64 / self.bytes_full.max(1) as f64
    }

    fn roundtrip_ok(&self) -> bool {
        self.roundtrip_digest == self.monolithic_digest
    }
}

/// Chunk the base release, then sweep churn rates: round-trip each new
/// release and price its delta against the base release's chunk cache.
fn delta_sweep(lab: &str, params: &AppParams, requests: usize) -> Vec<DeltaRow> {
    let (base, _) = generate_release(params, &ChurnParams::none());
    let base_pkg = package_for(&base, requests);
    let cache = pool_of(&chunk_package(&base_pkg, base.repo.funcs().len()));

    let mut rows = Vec::new();
    for &rate in &RATES {
        let (release, churn) = generate_release(
            params,
            &ChurnParams {
                seed: CHURN_SEED,
                rate,
            },
        );
        let pkg = package_for(&release, requests);
        let monolithic = pkg.serialize();
        let cp = chunk_package(&pkg, release.repo.funcs().len());
        let reassembled =
            reassemble(&cp.manifest, &pool_of(&cp)).expect("fresh pool reassembles losslessly");
        let delta = delta_against(&cp.manifest, &cache);
        let row = DeltaRow {
            rate,
            churn,
            bytes_full: delta.full_bytes(),
            wire_bytes: delta.wire_bytes(),
            manifest_bytes: delta.manifest_bytes,
            chunks_sent: delta.chunks_sent,
            chunks_reused: delta.chunks_reused,
            roundtrip_digest: crc32(&reassembled),
            monolithic_digest: crc32(&monolithic),
        };
        println!(
            "[{lab}] rate={rate:<4} roundtrip {} ({:#010x}), delta {:>7} of {:>7} B on wire \
             ({:>5.1}%), {} chunks sent / {} reused",
            if row.roundtrip_ok() { "ok" } else { "MISMATCH" },
            row.roundtrip_digest,
            row.wire_bytes,
            row.bytes_full,
            row.wire_ratio() * 100.0,
            row.chunks_sent,
            row.chunks_reused,
        );
        rows.push(row);
    }
    rows
}

struct LazyRow {
    early_serve_frac: f64,
    payload_bytes: u64,
    before_serve_frac: f64,
    hot_chunks: usize,
    cold_chunks: usize,
    hot_decode_ns: u64,
    cold_decode_ns: u64,
    decode_ns_per_mb: f64,
    layout_match: bool,
    ready_funcs: usize,
    total_funcs: usize,
}

/// Boots the churn-0.1 release chunk-lazily at `EARLY_FRAC` and proves
/// the emitted code identical to the monolithic boot.
fn lazy_boot(lab: &str, params: &AppParams, requests: usize) -> LazyRow {
    let (release, _) = generate_release(
        params,
        &ChurnParams {
            seed: CHURN_SEED,
            rate: 0.1,
        },
    );
    let pkg = package_for(&release, requests);
    let cp = chunk_package(&pkg, release.repo.funcs().len());
    let pool = pool_of(&cp);
    let opts = JumpStartOptions {
        early_serve_frac: EARLY_FRAC,
        ..Default::default()
    };
    let jit_opts = JitOptions::default();
    let (chunked, cs) = consume_chunked(&release.repo, &cp.manifest, &pool, jit_opts, &opts, 2)
        .expect("chunked boot succeeds");
    let monolithic =
        consume(&release.repo, &pkg, jit_opts, &opts, 2).expect("monolithic boot succeeds");
    let layout_match =
        chunked.engine.code_cache.layout_digest() == monolithic.engine.code_cache.layout_digest();
    let es = chunked
        .boot
        .early_serve
        .expect("early-serve point recorded");
    let decode_ns = cs.hot_decode_ns + cs.cold_decode_ns;
    let row = LazyRow {
        early_serve_frac: EARLY_FRAC,
        payload_bytes: cs.payload_bytes,
        before_serve_frac: cs.before_serve_frac(),
        hot_chunks: cs.hot_chunks,
        cold_chunks: cs.cold_chunks,
        hot_decode_ns: cs.hot_decode_ns,
        cold_decode_ns: cs.cold_decode_ns,
        decode_ns_per_mb: decode_ns as f64 * 1e6 / cs.payload_bytes.max(1) as f64,
        layout_match,
        ready_funcs: es.ready_funcs,
        total_funcs: es.ready_funcs + es.background_funcs,
    };
    println!(
        "[{lab}] lazy frac={EARLY_FRAC}: {:.1}% of {} payload B decoded pre-serve \
         ({} hot / {} cold chunks), layout {}, {} of {} funcs ready",
        row.before_serve_frac * 100.0,
        row.payload_bytes,
        row.hot_chunks,
        row.cold_chunks,
        if row.layout_match {
            "identical"
        } else {
            "DIVERGED"
        },
        row.ready_funcs,
        row.total_funcs,
    );
    row
}

struct FleetRow {
    bytes_full: u64,
    bytes_on_wire: u64,
    wire_ratio: f64,
    cache_hit_rate: f64,
    store_dedup_ratio: f64,
    mean_download_ms: f64,
    max_download_ms: u64,
    boot_ms_p50: f64,
    boot_ms_p95: f64,
    digest: u32,
}

fn fleet_params(shards: u32) -> DeployParams {
    DeployParams::default()
        .with_cells(1, 2)
        .with_seeders(2, 120)
        .with_warmup(
            WarmupParams {
                duration_ms: 200_000,
                sample_ms: 5_000,
                init_ms_nojs: 20_000,
                init_ms_js: 8_000,
                deserialize_ms: 2_000,
                profile_serve_ms: 60_000,
                relocation_ms: 20_000,
                ..WarmupParams::fig4()
            }
            .with_early_serve(EARLY_FRAC),
        )
        .with_fleet(
            FleetShape::default()
                .with_servers(8, 2)
                .with_shards(shards)
                .with_stagger(30_000),
        )
        .with_faults(FaultPlan::default())
        .with_seed(0x5704e)
        .with_js_opts(JumpStartOptions {
            min_funcs_profiled: 5,
            min_counter_mass: 100,
            min_requests: 10,
            ..Default::default()
        })
}

/// The event-engine distribution model on a small fleet: chunk deltas
/// against the previous release's consumer caches.
fn fleet_distribution(lab: &str) -> FleetRow {
    let app_params = AppParams::tiny();
    let (prior, _) = generate_release(&app_params, &ChurnParams::none());
    let (current, _) = generate_release(
        &app_params,
        &ChurnParams {
            seed: CHURN_SEED,
            rate: 0.1,
        },
    );
    let report = run_deployment_with_prior(
        &current,
        Some(&prior),
        &fleet_params(1).with_distribution(DistributionParams::chunked()),
    );
    let d = report.distribution;
    let agg = report.fleet_aggregate();
    let boot = agg.stat("server.boot_ms").expect("boot times aggregated");
    println!(
        "[{lab}] fleet: {} of {} B on wire ({:.1}%), cache hit {:.0}%, \
         download mean {:.0} ms / max {} ms, early-serve p50 {:.0} ms p95 {:.0} ms",
        d.bytes_on_wire,
        d.bytes_full,
        d.wire_ratio() * 100.0,
        d.cache_hit_rate() * 100.0,
        d.mean_download_ms,
        d.max_download_ms,
        boot.p50,
        boot.p95,
    );
    FleetRow {
        bytes_full: d.bytes_full,
        bytes_on_wire: d.bytes_on_wire,
        wire_ratio: d.wire_ratio(),
        cache_hit_rate: d.cache_hit_rate(),
        store_dedup_ratio: d.store_dedup_ratio(),
        mean_download_ms: d.mean_download_ms,
        max_download_ms: d.max_download_ms,
        boot_ms_p50: boot.p50,
        boot_ms_p95: boot.p95,
        digest: report.digest(),
    }
}

fn row_at(rows: &[DeltaRow], rate: f64) -> &DeltaRow {
    rows.iter()
        .find(|r| r.rate == rate)
        .expect("sweep covers the rate")
}

fn usage() -> ! {
    eprintln!("usage: jsstore [--small | --check]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut check = false;
    let mut small = false;
    for a in &args {
        match a.as_str() {
            "--check" => check = true,
            "--small" => small = true,
            bad => {
                eprintln!("jsstore: unknown argument `{bad}`");
                usage();
            }
        }
    }
    let small = check || small;
    let (lab, params, requests) = if small {
        ("small", AppParams::tiny(), 250)
    } else {
        ("bench", AppParams::bench(), 600)
    };

    let rows = delta_sweep(lab, &params, requests);
    let lazy = lazy_boot(lab, &params, requests);
    let fleet = fleet_distribution(lab);

    if check {
        for r in &rows {
            assert!(
                r.roundtrip_ok(),
                "rate {}: reassembled digest {:#010x} != monolithic {:#010x}",
                r.rate,
                r.roundtrip_digest,
                r.monolithic_digest
            );
        }
        // Zero churn + same profiling seed = identical package: the delta
        // is the manifest alone.
        let zero = row_at(&rows, 0.0);
        assert_eq!(zero.chunks_sent, 0, "identical release must ship no chunks");
        assert_eq!(zero.wire_bytes, zero.manifest_bytes);
        let at_0p1 = row_at(&rows, 0.1);
        assert!(
            at_0p1.wire_ratio() <= MAX_WIRE_RATIO_AT_0P1,
            "churn-0.1 delta shipped {:.1}% of full-package bytes (ceiling {:.0}%)",
            at_0p1.wire_ratio() * 100.0,
            MAX_WIRE_RATIO_AT_0P1 * 100.0
        );
        assert!(
            lazy.layout_match,
            "lazy boot must emit a byte-identical code cache"
        );
        assert!(
            lazy.before_serve_frac < MAX_EARLY_DECODE_FRAC_SMALL,
            "frac={EARLY_FRAC} boot decoded {:.1}% of the payload pre-serve (ceiling {:.0}%)",
            lazy.before_serve_frac * 100.0,
            MAX_EARLY_DECODE_FRAC_SMALL * 100.0
        );
        assert!(lazy.cold_chunks > 0, "a cold tail must exist to defer");
        assert!(
            lazy.ready_funcs < lazy.total_funcs,
            "early serve must start before every function compiles"
        );
        assert!(fleet.bytes_on_wire < fleet.bytes_full);
        assert!(fleet.mean_download_ms > 0.0);
        // The distribution plan is computed pre-fan-out: shard count must
        // leave no trace.
        let sharded = fleet_distribution("small/shards=2 recheck");
        assert_eq!(
            fleet.digest, sharded.digest,
            "report digest is shard-borne?"
        );
        println!(
            "check ok: {} round-trips byte-identical, churn-0.1 wire ratio {:.1}% <= {:.0}%, \
             lazy pre-serve {:.1}% < {:.0}%, layouts identical, fleet plan shard-invariant",
            rows.len(),
            at_0p1.wire_ratio() * 100.0,
            MAX_WIRE_RATIO_AT_0P1 * 100.0,
            lazy.before_serve_frac * 100.0,
            MAX_EARLY_DECODE_FRAC_SMALL * 100.0,
        );
        return;
    }

    if !small && lazy.before_serve_frac >= MAX_EARLY_DECODE_FRAC {
        eprintln!(
            "warning: lazy pre-serve decode {:.1}% is at/above the {:.0}% bench ceiling — \
             the ci.sh BENCH_store.json gate will fail",
            lazy.before_serve_frac * 100.0,
            MAX_EARLY_DECODE_FRAC * 100.0,
        );
    }

    let at_0p1 = row_at(&rows, 0.1);
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"store\",\n");
    json.push_str(&format!("  \"lab\": \"{lab}\",\n"));
    json.push_str(&format!("  \"churn_seed\": {CHURN_SEED},\n"));
    json.push_str(&format!(
        "  \"rates\": [{}],\n",
        RATES.map(|r| r.to_string()).join(", ")
    ));
    json.push_str(&format!(
        "  \"roundtrip_ok\": {},\n",
        rows.iter().all(|r| r.roundtrip_ok())
    ));
    json.push_str(&format!(
        "  \"wire_ratio_at_0p1\": {:.4},\n  \"dedup_ratio_at_0p1\": {:.4},\n",
        at_0p1.wire_ratio(),
        1.0 - at_0p1.wire_ratio(),
    ));
    json.push_str("  \"delta_sweep\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let c = &r.churn;
        json.push_str(&format!(
            concat!(
                "    {{\"rate\": {}, \"bytes_full\": {}, \"wire_bytes\": {}, ",
                "\"manifest_bytes\": {}, \"wire_ratio\": {:.4}, \"chunks_sent\": {}, ",
                "\"chunks_reused\": {}, \"roundtrip_ok\": {}, \"churn_edits\": {}}}"
            ),
            r.rate,
            r.bytes_full,
            r.wire_bytes,
            r.manifest_bytes,
            r.wire_ratio(),
            r.chunks_sent,
            r.chunks_reused,
            r.roundtrip_ok(),
            c.total_edits(),
        ));
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        concat!(
            "  \"lazy\": {{\"early_serve_frac\": {}, \"payload_bytes\": {}, ",
            "\"before_serve_frac\": {:.4}, \"hot_chunks\": {}, \"cold_chunks\": {}, ",
            "\"hot_decode_ns\": {}, \"cold_decode_ns\": {}, \"decode_ns_per_mb\": {:.0}, ",
            "\"layout_match\": {}, \"ready_funcs\": {}, \"total_funcs\": {}}},\n"
        ),
        lazy.early_serve_frac,
        lazy.payload_bytes,
        lazy.before_serve_frac,
        lazy.hot_chunks,
        lazy.cold_chunks,
        lazy.hot_decode_ns,
        lazy.cold_decode_ns,
        lazy.decode_ns_per_mb,
        lazy.layout_match,
        lazy.ready_funcs,
        lazy.total_funcs,
    ));
    json.push_str(&format!(
        concat!(
            "  \"fleet\": {{\"bytes_full\": {}, \"bytes_on_wire\": {}, \"wire_ratio\": {:.4}, ",
            "\"cache_hit_rate\": {:.4}, \"store_dedup_ratio\": {:.4}, ",
            "\"mean_download_ms\": {:.1}, \"max_download_ms\": {}, ",
            "\"early_serve_frac\": {}, \"boot_ms_p50\": {:.0}, \"boot_ms_p95\": {:.0}}}\n"
        ),
        fleet.bytes_full,
        fleet.bytes_on_wire,
        fleet.wire_ratio,
        fleet.cache_hit_rate,
        fleet.store_dedup_ratio,
        fleet.mean_download_ms,
        fleet.max_download_ms,
        EARLY_FRAC,
        fleet.boot_ms_p50,
        fleet.boot_ms_p95,
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_store.json", &json).expect("write BENCH_store.json");
    println!("wrote BENCH_store.json");
}
