//! `jswarmup` — statistically rigorous warmup classification over the
//! paper-scale fleet.
//!
//! Fig. 1/2 readings taken off one representative server with ad-hoc
//! thresholds can silently misreport: "VM Warmup Blows Hot and Cold"
//! shows real VMs often never settle, settle non-monotonically, or get
//! *slower*. This bench runs the PELT-based per-server classifier
//! (`fleet::warmup`) over whole deployments and proves the properties CI
//! gates on:
//!
//! * fault-free arm: ≥95% of Jump-Start consumers classify `warmup`,
//!   none `slowdown`, and the js time-to-steady-state p50 (with
//!   bootstrap CI) sits strictly below the no-js arm;
//! * faulted arm: degrading-host victims classify `slowdown` /
//!   `no-steady-state` — a fleet-mean curve would average them away,
//!   per-server classification must not;
//! * the full `WarmupReport` (class counts, TTSS CIs, median fleet
//!   curve) is byte-identical across runs and shard counts.
//!
//! Usage:
//!   jswarmup             paper-scale sweep (fault-free + faulted arms),
//!                        writes BENCH_warmup.json
//!   jswarmup --check     CI smoke: small fleet, asserts shard-invariant
//!                        byte-identical reports, sane classes, and that
//!                        degrading victims never read as settled.
//!                        Writes nothing unless --trace is given.
//!   jswarmup --shards N  override the shard (thread) count
//!   jswarmup --servers N override consumers per cell
//!   jswarmup --trace F   write the representatives' Chrome trace to F
//!                        (the input `jstrace --warmup` consumes)

use std::fmt::Write as _;
use std::time::Instant;

use fleet::{
    run_deployment, ArmSummary, DeployParams, DeployReport, FaultPlan, FleetShape, WarmupClass,
    WarmupParams, WarmupReport,
};
use jumpstart::JumpStartOptions;
use workload::{generate, AppParams};

fn usage() -> ! {
    eprintln!("usage: jswarmup [--check] [--shards N] [--servers N] [--trace FILE]");
    std::process::exit(2);
}

fn lenient_js_opts() -> JumpStartOptions {
    // The synthetic app is small; production-scale validation floors
    // would reject every package outright.
    JumpStartOptions {
        min_funcs_profiled: 5,
        min_counter_mass: 100,
        min_requests: 10,
        ..Default::default()
    }
}

/// The fault-free paper-scale arm: 2 regions x 5 buckets, staggered and
/// jittered but with no fault plan, so every class other than `warmup`
/// in the js arm is a classifier finding, not an injected one.
fn clean_arm(shards: u32, servers_per_cell: u32) -> DeployParams {
    DeployParams::default()
        .with_cells(2, 5)
        .with_seeders(3, 150)
        .with_warmup(WarmupParams::fig4().with_early_serve(0.25))
        .with_fleet(
            FleetShape::default()
                .with_servers(servers_per_cell, servers_per_cell / 10)
                .with_representatives(2)
                .with_shards(shards)
                .with_stagger(120_000)
                .with_jitter(150),
        )
        .with_seed(0x3a9e)
        .with_js_opts(lenient_js_opts())
}

/// The faulted arm: same fleet with slow hosts (boot late, then serve
/// fine — still `warmup`) and degrading hosts (service time inflates
/// with uptime — must classify `slowdown`/`no-steady-state`).
fn faulted_arm(shards: u32, servers_per_cell: u32) -> DeployParams {
    clean_arm(shards, servers_per_cell).with_faults(
        FaultPlan::default()
            .with_slow_consumers(100, 300)
            .with_degrading(150, 120),
    )
}

fn small_fleet(shards: u32) -> DeployParams {
    DeployParams::default()
        .with_cells(1, 2)
        .with_seeders(2, 120)
        .with_warmup(WarmupParams {
            duration_ms: 200_000,
            sample_ms: 5_000,
            init_ms_nojs: 20_000,
            init_ms_js: 8_000,
            deserialize_ms: 2_000,
            profile_serve_ms: 60_000,
            relocation_ms: 20_000,
            ..WarmupParams::fig4()
        })
        .with_fleet(
            FleetShape::default()
                .with_servers(8, 2)
                .with_shards(shards)
                .with_stagger(30_000)
                .with_jitter(100),
        )
        .with_seed(0xc11ec)
        .with_js_opts(lenient_js_opts())
}

/// Count of servers a per-server classifier may never report on a
/// healthy fleet read: settled means `warmup` or `flat`.
fn settled(arm: &ArmSummary) -> u32 {
    arm.counts.get(WarmupClass::Warmup) + arm.counts.get(WarmupClass::Flat)
}

fn print_arm(label: &str, arm: &ArmSummary) {
    let total = arm.counts.total().max(1);
    let mut classes = String::new();
    for c in WarmupClass::all() {
        let n = arm.counts.get(c);
        if n > 0 {
            let _ = write!(classes, " {}={n}", c.name());
        }
    }
    println!(
        "  {label:<5} {} servers:{classes}  ({:.1}% warmup)",
        arm.counts.total(),
        arm.counts.get(WarmupClass::Warmup) as f64 / total as f64 * 100.0,
    );
    if arm.ttss_n > 0 {
        println!(
            "        ttss p50 {:>7.0} ms [{:.0}, {:.0}]  p95 {:>7.0} ms  p99 {:>7.0} ms  (n={})",
            arm.ttss_p50.value,
            arm.ttss_p50.lo,
            arm.ttss_p50.hi,
            arm.ttss_p95.value,
            arm.ttss_p99.value,
            arm.ttss_n,
        );
    }
}

/// Degrading-host victims and how many of them the classifier let slip
/// through as settled (`warmup`/`flat`) — the number CI pins to zero.
fn victim_counts(report: &DeployReport) -> (u32, u32) {
    let mut victims = 0;
    let mut slipped = 0;
    for s in report.stats.iter().filter(|s| s.degrading) {
        victims += 1;
        if matches!(s.class, WarmupClass::Warmup | WarmupClass::Flat) {
            slipped += 1;
        }
    }
    (victims, slipped)
}

fn check(trace_path: Option<&str>) {
    let app = generate(&AppParams::tiny());
    println!("jswarmup --check: small fleet, classification + shard invariance");

    let one = run_deployment(&app, &small_fleet(1));
    let two = run_deployment(&app, &small_fleet(2));
    assert_eq!(
        one.warmup.to_json(),
        two.warmup.to_json(),
        "WarmupReport must be byte-identical across shard counts"
    );
    assert_eq!(one.warmup.digest(), two.warmup.digest());
    let rerun = run_deployment(&app, &small_fleet(1));
    assert_eq!(
        one.warmup.to_json(),
        rerun.warmup.to_json(),
        "WarmupReport must be byte-identical across runs"
    );

    let w = &one.warmup;
    assert!(w.js.counts.total() > 0 && w.nojs.counts.total() > 0);
    assert_eq!(
        w.js.counts.get(WarmupClass::Slowdown),
        0,
        "fault-free js consumers must never classify slowdown"
    );
    assert!(
        w.js.counts.get(WarmupClass::Warmup) > 0,
        "js consumers must classify warmup"
    );
    assert!(
        w.js.ttss_n > 0 && w.nojs.ttss_n > 0,
        "both arms must produce steady-state times"
    );
    assert!(
        w.js.ttss_p50.value < w.nojs.ttss_p50.value,
        "js must reach steady state before no-js: {} vs {}",
        w.js.ttss_p50.value,
        w.nojs.ttss_p50.value
    );
    assert!(
        !w.js.median_curve.is_empty(),
        "median fleet curve must be populated"
    );

    // Degrading hosts: per-server classification must not let a
    // monotonically-worsening victim read as settled.
    let faulted = run_deployment(
        &app,
        &small_fleet(1).with_faults(FaultPlan::default().with_degrading(1000, 120)),
    );
    let (victims, slipped) = victim_counts(&faulted);
    assert!(victims > 0, "fault plan must place degrading hosts");
    assert_eq!(
        slipped, 0,
        "{slipped}/{victims} degrading victims read as settled"
    );

    if let Some(path) = trace_path {
        std::fs::write(path, one.to_chrome_trace()).expect("write trace");
        println!("  wrote {path}");
    }
    println!(
        "  ok: digest 0x{:08x}, js ttss p50 {:.0} ms < nojs {:.0} ms, {} degrading victims all flagged",
        w.digest(),
        w.js.ttss_p50.value,
        w.nojs.ttss_p50.value,
        victims,
    );
}

/// Embeds a [`WarmupReport`] (already JSON) as a named object field.
fn arm_json(out: &mut String, name: &str, report: &WarmupReport) {
    let _ = write!(
        out,
        "\"{name}\":{},\"{name}_digest\":{}",
        report.to_json(),
        report.digest()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut check_mode = false;
    let mut shards: Option<u32> = None;
    let mut servers: Option<u32> = None;
    let mut trace_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => check_mode = true,
            "--shards" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => shards = Some(n),
                None => usage(),
            },
            "--servers" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => servers = Some(n),
                None => usage(),
            },
            "--trace" => match it.next() {
                Some(p) => trace_path = Some(p.clone()),
                None => usage(),
            },
            _ => usage(),
        }
    }

    if check_mode {
        check(trace_path.as_deref());
        return;
    }

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let shards = shards.unwrap_or(cores as u32);
    let servers_per_cell = servers.unwrap_or(100);
    println!(
        "jswarmup: 2 regions x 5 buckets, {servers_per_cell}+{} servers/cell, {shards} shard(s), {cores} hardware core(s)",
        servers_per_cell / 10,
    );
    let app = generate(&AppParams::tiny());

    let t0 = Instant::now();
    let clean = run_deployment(&app, &clean_arm(shards, servers_per_cell));
    println!("fault-free arm:");
    print_arm("js", &clean.warmup.js);
    print_arm("no-js", &clean.warmup.nojs);

    // Byte-identical across shard counts (and therefore across runs:
    // the same params at a different shard count is both at once).
    let alt_shards = if shards == 1 { 2 } else { shards - 1 };
    let resharded = run_deployment(&app, &clean_arm(alt_shards, servers_per_cell));
    let reproducible = clean.warmup.to_json() == resharded.warmup.to_json();
    println!("  reproducible across {shards} vs {alt_shards} shard(s): {reproducible}");

    let faulted = run_deployment(&app, &faulted_arm(shards, servers_per_cell));
    let (victims, slipped) = victim_counts(&faulted);
    println!("faulted arm (slow 10%, degrading 15%):");
    print_arm("js", &faulted.warmup.js);
    print_arm("no-js", &faulted.warmup.nojs);
    println!("  {victims} degrading victims, {slipped} misread as settled");
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!("  {wall_ms:.0} ms wall for 3 deployments");

    if let Some(path) = &trace_path {
        std::fs::write(path, clean.to_chrome_trace()).expect("write trace");
        println!("wrote {path}");
    }

    let mut json = String::from("{");
    let _ = write!(
        json,
        "\"cores\":{cores},\"shards\":{shards},\"servers\":{},\"regions\":2,\"buckets\":5,\
         \"wall_ms\":{wall_ms:.1},\"reproducible\":{reproducible},",
        clean.sim.servers,
    );
    arm_json(&mut json, "clean", &clean.warmup);
    json.push(',');
    arm_json(&mut json, "faulted", &faulted.warmup);
    let _ = write!(
        json,
        ",\"degrading_victims\":{victims},\"victims_settled\":{slipped},\
         \"faulted_settled_js\":{},\"faulted_total_js\":{}}}",
        settled(&faulted.warmup.js),
        faulted.warmup.js.counts.total(),
    );
    std::fs::write("BENCH_warmup.json", &json).expect("write BENCH_warmup.json");
    println!("wrote BENCH_warmup.json");
}
