//! Regenerates every figure of "HHVM Jump-Start" (CGO 2021) against the
//! simulated substrate. Run with `--all` or any subset of
//! `--fig1 --fig2 --fig4 --fig5 --fig6 --reliability --seeder`.
//!
//! Output is textual: for each figure, the measured series/scalars plus
//! the paper's reported values for comparison. Absolute numbers are not
//! expected to match (the substrate is a simulator); shapes and signs are.

use bench::Lab;
use fleet::{
    measure_steady_state, run_crashloop, simulate_warmup, CrashLoopParams, ServerConfig,
    SteadyConfig, SteadyParams, Timeline,
};
use jumpstart::{FuncSort, JumpStartOptions, Validator};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |f: &str| args.iter().any(|a| a == f) || args.iter().any(|a| a == "--all");
    if args.is_empty() {
        eprintln!(
            "usage: figures [--all] [--fig1] [--fig2] [--fig4] [--fig5] [--fig6] [--reliability] [--seeder]"
        );
        std::process::exit(2);
    }

    println!("== HHVM Jump-Start reproduction: figure regeneration ==");
    println!("building bench-scale application and ground-truth profile...");
    let lab = Lab::bench_scale();
    println!(
        "app: {} funcs, {} classes, {} units, {} endpoints; profiled {} funcs over {} requests\n",
        lab.app.repo.funcs().len(),
        lab.app.repo.classes().len(),
        lab.app.repo.units().len(),
        lab.app.endpoints.len(),
        lab.truth.tier.profiled_count(),
        lab.truth.requests,
    );

    if has("--fig1") {
        fig1(&lab);
    }
    if has("--fig2") {
        fig2(&lab);
    }
    if has("--fig4") {
        fig4(&lab);
    }
    if has("--fig5") {
        fig5(&lab);
    }
    if has("--fig6") {
        fig6(&lab);
    }
    if has("--reliability") {
        reliability(&lab);
    }
    if has("--seeder") {
        seeder(&lab);
    }
}

fn print_timeline(tl: &Timeline, every: usize) {
    println!(
        "  {:>7} {:>9} {:>12} {:>12}",
        "t(min)", "rps_norm", "latency(ms)", "code(KB)"
    );
    for s in tl.samples.iter().step_by(every) {
        println!(
            "  {:>7.1} {:>9.3} {:>12.2} {:>12}",
            s.t_ms as f64 / 60_000.0,
            s.rps_norm,
            s.latency_ms,
            s.code_bytes / 1024
        );
    }
}

fn fig1(lab: &Lab) {
    println!("-- Figure 1: JITed code size over time (no Jump-Start) --");
    println!("paper: ~500 MB total; A (profiling stops) ~6 min, relocation B->C,");
    println!("       JIT ceases (D) ~25 min. Ours is a scaled-down app; compare shape.\n");
    let params = lab.warmup_fig1();
    let tl = simulate_warmup(
        &lab.app,
        &lab.model,
        &lab.mix,
        &ServerConfig {
            params,
            jumpstart: None,
        },
    );
    print_timeline(&tl, 6);
    let min = |o: Option<u64>| o.map(|v| v as f64 / 60_000.0);
    println!(
        "\n  measured: A = {:?} min, B = {:?} min, C = {:?} min, final code = {} KB",
        min(tl.point_a_ms),
        min(tl.point_b_ms),
        min(tl.point_c_ms),
        tl.samples.last().map(|s| s.code_bytes / 1024).unwrap_or(0)
    );
    println!("  paper:    A ~= 6 min, B ~= 10 min, C ~= 13 min, final ~500 MB (full site)\n");
}

fn fig2(lab: &Lab) {
    println!("-- Figure 2: server capacity loss due to restart and warmup --");
    println!("paper: normalized RPS ramps over ~25 min; area above curve = capacity loss.\n");
    let params = lab.warmup_fig1();
    let tl = simulate_warmup(
        &lab.app,
        &lab.model,
        &lab.mix,
        &ServerConfig {
            params,
            jumpstart: None,
        },
    );
    print_timeline(&tl, 6);
    println!(
        "\n  measured capacity loss over 25 min: {:.1}%  (paper's Fig. 2 area, qualitative)\n",
        tl.capacity_loss_over(1_500_000) * 100.0
    );
}

fn fig4(lab: &Lab) {
    println!("-- Figure 4: warmup latency and throughput, Jump-Start vs none --");
    let params = lab.warmup_fig4();
    let pkg = lab.package(&JumpStartOptions::default());
    let js = simulate_warmup(
        &lab.app,
        &lab.model,
        &lab.mix,
        &ServerConfig {
            params,
            jumpstart: Some(&pkg),
        },
    );
    let nojs = simulate_warmup(
        &lab.app,
        &lab.model,
        &lab.mix,
        &ServerConfig {
            params,
            jumpstart: None,
        },
    );

    println!("\n  (a) average wall latency per request (ms) over uptime");
    println!(
        "  {:>7} {:>12} {:>12} {:>7}",
        "t(s)", "jumpstart", "no-js", "ratio"
    );
    for (a, b) in js.samples.iter().zip(nojs.samples.iter()).step_by(6) {
        let ratio = if a.latency_ms > 0.0 {
            b.latency_ms / a.latency_ms
        } else {
            0.0
        };
        println!(
            "  {:>7} {:>12.2} {:>12.2} {:>7.2}",
            a.t_ms / 1000,
            a.latency_ms,
            b.latency_ms,
            ratio
        );
    }
    println!("  paper: ~3x latency gap between serving start and ~250 s\n");

    println!("  (b) normalized RPS over uptime");
    println!("  {:>7} {:>12} {:>12}", "t(s)", "jumpstart", "no-js");
    for (a, b) in js.samples.iter().zip(nojs.samples.iter()).step_by(6) {
        println!(
            "  {:>7} {:>12.3} {:>12.3}",
            a.t_ms / 1000,
            a.rps_norm,
            b.rps_norm
        );
    }
    let loss_js = js.capacity_loss_over(600_000) * 100.0;
    let loss_nojs = nojs.capacity_loss_over(600_000) * 100.0;
    let reduction = (loss_nojs - loss_js) / loss_nojs * 100.0;
    println!("\n  measured capacity loss (first 10 min): no-JS {loss_nojs:.1}%, JS {loss_js:.1}%");
    println!("  measured reduction: {reduction:.1}%");
    println!("  paper:    no-JS 78.3%, JS 35.3%, reduction 54.9%");
    println!(
        "  serve start: JS {} s vs no-JS {} s (paper: JS starts slightly earlier)\n",
        js.serve_start_ms / 1000,
        nojs.serve_start_ms / 1000
    );
}

fn steady_params() -> SteadyParams {
    SteadyParams {
        warm_requests: 400,
        measure_requests: 2400,
        threads: 8,
        ..Default::default()
    }
}

fn fig5(lab: &Lab) {
    println!("-- Figure 5: steady-state speedup and miss reductions, JS vs no-JS --");
    let params = steady_params();
    let js = measure_steady_state(
        &lab.app,
        &lab.mix,
        &lab.truth,
        &SteadyConfig::jumpstart_full(),
        &params,
    );
    let nojs = measure_steady_state(
        &lab.app,
        &lab.mix,
        &lab.truth,
        &SteadyConfig::no_jumpstart(),
        &params,
    );
    let speedup = js.report.speedup_vs(&nojs.report);
    let red = js.report.reduction_vs(&nojs.report);
    println!("\n  {:<12} {:>9} {:>8}", "metric", "measured", "paper");
    println!("  {:<12} {:>8.2}% {:>7.1}%", "speedup", speedup, 5.4);
    let names = [
        "branch MR",
        "i-cache MR",
        "i-TLB MR",
        "d-cache MR",
        "d-TLB MR",
        "LLC MR",
    ];
    let paper = [6.8, 6.2, 20.8, 1.4, 12.1, 3.5];
    for ((n, m), p) in names.iter().zip(red.iter()).zip(paper.iter()) {
        println!("  {:<12} {:>8.2}% {:>7.1}%", n, m, p);
    }
    println!("\n  (MR = miss reduction per instruction; positive = fewer misses with JS)\n");
}

fn fig6(lab: &Lab) {
    println!("-- Figure 6: per-optimization speedups over Jump-Start-without-opts --");
    let params = steady_params();
    let base = measure_steady_state(
        &lab.app,
        &lab.mix,
        &lab.truth,
        &SteadyConfig::jumpstart_no_opts(),
        &params,
    );
    let heat_cfg = SteadyConfig {
        name: "no-func-sort",
        js: JumpStartOptions {
            func_sort: FuncSort::SourceOrder,
            ..JumpStartOptions::without_optimizations()
        },
        no_jumpstart: false,
    };
    let configs = [
        (SteadyConfig::no_jumpstart(), -0.2, "no Jump-Start"),
        (
            SteadyConfig::bb_layout_only(),
            3.8,
            "BB layout (accurate Vasm weights)",
        ),
        (
            SteadyConfig::func_layout_only(),
            0.75,
            "func layout (inlining-aware C3)",
        ),
        (
            SteadyConfig::prop_reorder_only(),
            0.8,
            "prop reorder (hotness)",
        ),
        (
            SteadyConfig::jumpstart_full(),
            f64::NAN,
            "all optimizations",
        ),
        (heat_cfg, f64::NAN, "[extra] heat order instead of C3"),
    ];
    println!(
        "\n  {:<38} {:>9} {:>8}",
        "configuration", "measured", "paper"
    );
    for (cfg, paper, label) in configs {
        let o = measure_steady_state(&lab.app, &lab.mix, &lab.truth, &cfg, &params);
        let s = o.report.speedup_vs(&base.report);
        if paper.is_nan() {
            println!("  {:<38} {:>8.2}% {:>8}", label, s, "-");
        } else {
            println!("  {:<38} {:>8.2}% {:>7.2}%", label, s, paper);
        }
    }
    println!("\n  baseline: Jump-Start enabled, §V optimizations disabled (paper's Fig. 6)\n");
}

fn reliability(lab: &Lab) {
    println!("-- §VI reliability: crash-loop containment --");
    println!("\n  scenario A: 1 of 5 packages is crash-inducing, randomized selection");
    let a = run_crashloop(&CrashLoopParams {
        servers: 5000,
        packages: 5,
        poisoned: 1,
        ..Default::default()
    });
    println!("  crashed per restart wave: {:?}", a.crashed_per_wave);
    println!(
        "  fleet healthy after {:?} waves; fallbacks {}; healthy on JS {}",
        a.waves_to_healthy, a.fallbacks, a.healthy_jumpstart
    );
    println!("  paper: affected consumers reduce exponentially with each restart\n");

    println!("  scenario B: single bad package, no randomization");
    let b = run_crashloop(&CrashLoopParams {
        servers: 5000,
        packages: 1,
        poisoned: 1,
        ..Default::default()
    });
    println!("  crashed per restart wave: {:?}", b.crashed_per_wave);
    println!(
        "  fallbacks {} (automatic no-Jump-Start fallback caps the loop at {} attempts)\n",
        b.fallbacks, 3
    );

    println!("  scenario C: validation catches deterministic JIT crashes");
    let opts = JumpStartOptions {
        min_funcs_profiled: 10,
        min_counter_mass: 1000,
        min_requests: 50,
        ..Default::default()
    };
    let validator = Validator::new(opts, jit::JitOptions::default());
    let mut pkg = lab.package(&opts);
    let ok = validator.validate_package(&lab.app.repo, &pkg, 0);
    println!("  healthy package: {:?}", ok.map(|r| r.compiled_funcs));
    pkg.meta.poison = jumpstart::Poison::CompileCrash;
    println!(
        "  compile-crash package: {:?}",
        validator.validate_package(&lab.app.repo, &pkg, 0).err()
    );
    println!();
}

fn seeder(lab: &Lab) {
    println!("-- §IV/§VII seeder economics --");
    let pkg = lab.package(&JumpStartOptions::default());
    let bytes = pkg.serialize();
    println!("  package size: {} KB", bytes.len() / 1024);
    println!("  preload list: {} units", pkg.preload.unit_order.len());
    println!("  function order: {} functions", pkg.func_order.len());
    println!("  prop orders: {} classes", pkg.prop_orders.len());
    println!(
        "  coverage: {} funcs, {} counter mass, {} requests",
        pkg.meta.coverage.funcs_profiled,
        pkg.meta.coverage.counter_mass,
        pkg.meta.coverage.requests
    );
    let back = jumpstart::ProfilePackage::deserialize(&bytes).expect("round-trips");
    assert_eq!(back, pkg);
    println!("  round-trip: ok\n");
}
