//! `jsfleet` — paper-scale fleet benchmark: one full C1/C2/C3 push over
//! thousands of simulated servers on the sharded event core.
//!
//! The default run deploys across 2 regions x 5 semantic buckets (the 10
//! partitions of §IV-A) with 200 Jump-Start consumers and 20 baselines
//! per cell — 2200 servers, millions of simulated requests — staggered,
//! jittered, and with a 5% degraded-host tail. It prints the headline
//! numbers and writes `BENCH_fleet.json` (events/sec, wall time, fleet
//! p50/p95/p99 boot and ready times, capacity loss) for the CI gate.
//!
//! Usage:
//!   jsfleet              paper-scale run, writes BENCH_fleet.json
//!   jsfleet --check      CI smoke: small fleet twice (1 shard vs 2),
//!                        asserts the reports are bit-identical and the
//!                        counters sane. Writes nothing. Exits nonzero on
//!                        any violation.
//!   jsfleet --shards N   override the shard (thread) count
//!   jsfleet --servers N  override consumers per cell
//!   jsfleet --trace F    additionally write the representative servers'
//!                        Chrome trace (Perfetto-loadable) to F

use std::fmt::Write as _;
use std::time::Instant;

use fleet::{
    run_deployment, run_deployment_with_prior, ArmSummary, DeployParams, DeployReport,
    DistributionParams, FaultPlan, FleetShape, WarmupClass, WarmupParams,
};
use jumpstart::JumpStartOptions;
use telemetry::AggStat;
use workload::{generate, generate_release, App, AppParams, ChurnParams};

fn usage() -> ! {
    eprintln!("usage: jsfleet [--check] [--shards N] [--servers N] [--trace FILE]");
    std::process::exit(2);
}

fn lenient_js_opts() -> JumpStartOptions {
    // The synthetic app is small; production-scale validation floors
    // would reject every package outright.
    JumpStartOptions {
        min_funcs_profiled: 5,
        min_counter_mass: 100,
        min_requests: 10,
        ..Default::default()
    }
}

/// The release churn between consecutive pushes the distribution model
/// prices deltas against (matches the paper's ~3 pushes/day cadence).
const PUSH_CHURN: f64 = 0.1;

/// The previous and current release of the same app: consumers hold the
/// previous release's chunks in cache when the current push arrives.
fn consecutive_releases(params: &AppParams, seed: u64) -> (App, App) {
    let (prior, _) = generate_release(params, &ChurnParams::none());
    let (current, _) = generate_release(
        params,
        &ChurnParams {
            seed,
            rate: PUSH_CHURN,
        },
    );
    (prior, current)
}

fn paper_scale(shards: u32, servers_per_cell: u32) -> DeployParams {
    DeployParams::default()
        .with_cells(2, 5)
        .with_seeders(3, 150)
        .with_warmup(WarmupParams::fig4().with_early_serve(0.25))
        .with_distribution(DistributionParams::chunked())
        .with_fleet(
            FleetShape::default()
                .with_servers(servers_per_cell, servers_per_cell / 10)
                .with_representatives(2)
                .with_shards(shards)
                .with_stagger(120_000)
                .with_jitter(150),
        )
        .with_faults(FaultPlan::default().with_slow_consumers(50, 300))
        .with_seed(0xf1ee7)
        .with_js_opts(lenient_js_opts())
}

fn small_fleet(shards: u32) -> DeployParams {
    DeployParams::default()
        .with_cells(1, 2)
        .with_seeders(2, 120)
        .with_warmup(WarmupParams {
            duration_ms: 200_000,
            sample_ms: 5_000,
            init_ms_nojs: 20_000,
            init_ms_js: 8_000,
            deserialize_ms: 2_000,
            profile_serve_ms: 60_000,
            relocation_ms: 20_000,
            ..WarmupParams::fig4()
        })
        .with_fleet(
            FleetShape::default()
                .with_servers(6, 2)
                .with_shards(shards)
                .with_stagger(30_000)
                .with_jitter(100),
        )
        .with_faults(FaultPlan::default().with_slow_consumers(200, 300))
        .with_seed(0xc11ec)
        .with_js_opts(lenient_js_opts())
}

fn stat_json(out: &mut String, name: &str, stat: Option<&AggStat>) {
    match stat {
        Some(s) => {
            let _ = write!(
                out,
                "\"{name}\":{{\"n\":{},\"mean\":{:.3},\"p50\":{:.3},\"p95\":{:.3},\"p99\":{:.3},\"min\":{:.3},\"max\":{:.3}}}",
                s.n, s.mean, s.p50, s.p95, s.p99, s.min, s.max
            );
        }
        None => {
            let _ = write!(out, "\"{name}\":{{\"n\":0}}");
        }
    }
}

/// Per-class server counts for one arm, as a JSON object — the same
/// numbers `jswarmup` reports, so the two benches can't drift apart.
fn class_counts_json(out: &mut String, name: &str, arm: &ArmSummary) {
    let _ = write!(out, "\"{name}\":{{");
    for (i, c) in WarmupClass::all().into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", c.name(), arm.counts.get(c));
    }
    out.push('}');
}

fn print_summary(report: &DeployReport, wall_ms: f64, events_per_sec: f64) {
    let sim = report.sim;
    println!(
        "  {} servers on {} shard(s): {} events, {} steps computed of {} dense ({:.1}x saved)",
        sim.servers,
        sim.shards,
        sim.events,
        sim.steps_executed,
        sim.steps_dense,
        sim.steps_dense as f64 / sim.steps_executed.max(1) as f64,
    );
    println!(
        "  {:.2}M simulated requests in {:.0} ms wall ({:.0} events/sec)",
        sim.requests / 1e6,
        wall_ms,
        events_per_sec,
    );
    let agg = report.fleet_aggregate();
    if let Some(boot) = agg.stat("server.boot_ms") {
        println!(
            "  boot_ms  p50 {:>8.0}  p95 {:>8.0}  p99 {:>8.0}",
            boot.p50, boot.p95, boot.p99
        );
    }
    if let Some(ready) = agg.stat("server.ready_ms") {
        println!(
            "  ready_ms p50 {:>8.0}  p95 {:>8.0}  p99 {:>8.0}  ({}/{} reached 0.9 rps)",
            ready.p50, ready.p95, ready.p99, ready.n, agg.servers
        );
    }
    println!(
        "  capacity-loss reduction vs no-Jump-Start: {:.1}% (paper: 54.9%)",
        report.capacity_loss_reduction(600_000)
    );
    let w = &report.warmup;
    println!(
        "  warmup classes: js {}/{} warmup, no-js {}/{} (report digest 0x{:08x})",
        w.js.counts.get(WarmupClass::Warmup),
        w.js.counts.total(),
        w.nojs.counts.get(WarmupClass::Warmup),
        w.nojs.counts.total(),
        w.digest(),
    );
    let d = &report.distribution;
    if d.enabled {
        println!(
            "  distribution: {:.2} MB on wire of {:.2} MB full ({:.0}% saved), \
             chunk-cache hit rate {:.0}%, download mean {:.0} ms / max {} ms",
            d.bytes_on_wire as f64 / 1e6,
            d.bytes_full as f64 / 1e6,
            (1.0 - d.wire_ratio()) * 100.0,
            d.cache_hit_rate() * 100.0,
            d.mean_download_ms,
            d.max_download_ms,
        );
    }
}

fn check() {
    let app = generate(&AppParams::tiny());
    println!("jsfleet --check: small fleet, shard invariance + counters");

    let t0 = Instant::now();
    let one = run_deployment(&app, &small_fleet(1));
    let wall_one = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    let two = run_deployment(&app, &small_fleet(2));
    let wall_two = t1.elapsed().as_secs_f64() * 1e3;

    assert_eq!(
        one.digest(),
        two.digest(),
        "digest must not depend on shard count"
    );
    assert_eq!(
        one.stats, two.stats,
        "per-server stats must not depend on shard count"
    );
    assert_eq!(
        one.fleet_aggregate(),
        two.fleet_aggregate(),
        "aggregates must not depend on shard count"
    );
    assert!(one.published > 0, "seeding must publish packages");
    assert!(one.sim.requests > 0.0, "fleet must serve requests");
    assert!(
        one.sim.steps_executed < one.sim.steps_dense,
        "event core must skip provably-idle steps"
    );
    assert!(
        one.stats.iter().any(|s| s.slow_host),
        "fault plan must place degraded hosts"
    );
    let reduction = one.capacity_loss_reduction(200_000);
    assert!(
        reduction > 10.0,
        "Jump-Start must reduce capacity loss, got {reduction:.1}%"
    );

    // Distribution model: chunk deltas beat full sends, and the link
    // simulation stays shard-invariant.
    let (prior, current) = consecutive_releases(&AppParams::tiny(), 0xc11ec);
    let chunked = run_deployment_with_prior(
        &current,
        Some(&prior),
        &small_fleet(1).with_distribution(DistributionParams::chunked()),
    );
    let chunked_sharded = run_deployment_with_prior(
        &current,
        Some(&prior),
        &small_fleet(2).with_distribution(DistributionParams::chunked()),
    );
    assert_eq!(
        chunked.digest(),
        chunked_sharded.digest(),
        "distribution plan must not depend on shard count"
    );
    let full = run_deployment_with_prior(
        &current,
        Some(&prior),
        &small_fleet(1).with_distribution(DistributionParams::full()),
    );
    assert!(
        chunked.distribution.bytes_on_wire < full.distribution.bytes_on_wire,
        "chunk deltas must ship fewer bytes than full packages"
    );
    assert!(
        chunked.distribution.chunks_cached > 0,
        "consumer caches must absorb unchanged chunks"
    );
    assert!(
        chunked
            .stats
            .iter()
            .filter(|s| s.jumpstart)
            .all(|s| s.download_ms > 0 && s.bytes_on_wire > 0),
        "every consumer fetch must be priced and scheduled"
    );

    println!(
        "  ok: digest 0x{:08x}, {} servers, reduction {:.1}%, wire ratio {:.2}, wall {:.0}+{:.0} ms",
        one.digest(),
        one.sim.servers,
        reduction,
        chunked.distribution.wire_ratio(),
        wall_one,
        wall_two,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut check_mode = false;
    let mut shards: Option<u32> = None;
    let mut servers: Option<u32> = None;
    let mut trace_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => check_mode = true,
            "--shards" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => shards = Some(n),
                None => usage(),
            },
            "--servers" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => servers = Some(n),
                None => usage(),
            },
            "--trace" => match it.next() {
                Some(p) => trace_path = Some(p.clone()),
                None => usage(),
            },
            _ => usage(),
        }
    }

    if check_mode {
        check();
        return;
    }

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let shards = shards.unwrap_or(cores as u32);
    let servers_per_cell = servers.unwrap_or(200);
    let params = paper_scale(shards, servers_per_cell);
    println!(
        "jsfleet: {} regions x {} buckets, {}+{} servers/cell, {} shard(s), {} hardware core(s)",
        params.regions,
        params.buckets,
        params.fleet.servers_per_cell,
        params.fleet.baselines_per_cell,
        params.fleet.shards,
        cores,
    );

    // Consecutive releases: consumers hold the prior push's chunks.
    let (prior, app) = consecutive_releases(&AppParams::tiny(), params.seed);
    let t0 = Instant::now();
    let report = run_deployment_with_prior(&app, Some(&prior), &params);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let events_per_sec = report.sim.events as f64 / (wall_ms / 1e3).max(1e-9);
    print_summary(&report, wall_ms, events_per_sec);

    if let Some(path) = &trace_path {
        std::fs::write(path, report.to_chrome_trace()).expect("write trace");
        println!("wrote {path}");
    }

    let agg = report.fleet_aggregate();
    let sim = report.sim;
    let mut json = String::from("{");
    let _ = write!(
        json,
        "\"cores\":{cores},\"shards\":{},\"regions\":{},\"buckets\":{},\
         \"servers\":{},\"consumers\":{},\"baselines\":{},\
         \"published\":{},\"validation_failures\":{},\"seeder_crashes\":{},\
         \"events\":{},\"steps_executed\":{},\"steps_dense\":{},\
         \"total_requests\":{:.0},\"wall_ms\":{wall_ms:.1},\"events_per_sec\":{events_per_sec:.0},\
         \"digest\":{},",
        sim.shards,
        params.regions,
        params.buckets,
        sim.servers,
        report.stats.iter().filter(|s| s.jumpstart).count(),
        report.stats.iter().filter(|s| !s.jumpstart).count(),
        report.published,
        report.validation_failures,
        report.seeder_crashes,
        sim.events,
        sim.steps_executed,
        sim.steps_dense,
        sim.requests,
        report.digest(),
    );
    stat_json(&mut json, "boot_ms", agg.stat("server.boot_ms"));
    json.push(',');
    stat_json(&mut json, "ready_ms", agg.stat("server.ready_ms"));
    json.push(',');
    stat_json(&mut json, "capacity_loss", agg.stat("server.capacity_loss"));
    json.push(',');
    stat_json(&mut json, "download_ms", agg.stat("server.download_ms"));
    let d = &report.distribution;
    let _ = write!(
        json,
        ",\"early_serve_frac\":{},\"distribution\":{{\"chunked\":{},\"push_churn\":{PUSH_CHURN},\
         \"bytes_full\":{},\"bytes_on_wire\":{},\"manifest_bytes\":{},\"wire_ratio\":{:.4},\
         \"chunks_sent\":{},\"chunks_cached\":{},\"cache_hit_rate\":{:.4},\
         \"store_dedup_ratio\":{:.4},\"mean_download_ms\":{:.1},\"max_download_ms\":{}}}",
        params.warmup.early_serve_frac,
        d.chunked,
        d.bytes_full,
        d.bytes_on_wire,
        d.manifest_bytes,
        d.wire_ratio(),
        d.chunks_sent,
        d.chunks_cached,
        d.cache_hit_rate(),
        d.store_dedup_ratio(),
        d.mean_download_ms,
        d.max_download_ms,
    );
    let _ = write!(
        json,
        ",\"mean_loss_js\":{:.4},\"mean_loss_nojs\":{:.4},\"capacity_loss_reduction_pct\":{:.2}",
        report.mean_loss_js(params.warmup.duration_ms),
        report.mean_loss_nojs(params.warmup.duration_ms),
        report.capacity_loss_reduction(params.warmup.duration_ms),
    );
    json.push_str(",\"warmup_classes\":{");
    class_counts_json(&mut json, "js", &report.warmup.js);
    json.push(',');
    class_counts_json(&mut json, "nojs", &report.warmup.nojs);
    let _ = write!(json, "}},\"warmup_digest\":{}}}", report.warmup.digest());
    std::fs::write("BENCH_fleet.json", &json).expect("write BENCH_fleet.json");
    println!("wrote BENCH_fleet.json");
}
