//! Package serialization benchmarks: the seeder's serialize step and the
//! consumer's deserialize step (Fig. 3's workflow edges), with throughput.

use bench::Lab;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use jumpstart::{JumpStartOptions, ProfilePackage};

fn bench_package(c: &mut Criterion) {
    let lab = Lab::small();
    let pkg = lab.package(&JumpStartOptions::default());
    let bytes = pkg.serialize();
    println!("[package] serialized size: {} KB", bytes.len() / 1024);

    let mut group = c.benchmark_group("package");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("serialize", |b| b.iter(|| pkg.serialize()));
    group.bench_function("deserialize", |b| {
        b.iter(|| ProfilePackage::deserialize(&bytes).expect("valid"))
    });
    group.bench_function("validate_crc_reject", |b| {
        let mut corrupt = bytes.to_vec();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0xff;
        b.iter(|| ProfilePackage::deserialize(&corrupt).expect_err("corrupt"))
    });
    group.finish();
}

criterion_group!(benches, bench_package);
criterion_main!(benches);
