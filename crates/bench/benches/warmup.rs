//! Warmup benchmarks (Figs. 1, 2, 4): times the single-server warmup
//! simulation for both boot modes and reports the headline capacity-loss
//! metrics as Criterion throughput-agnostic measurements.

use bench::Lab;
use criterion::{criterion_group, criterion_main, Criterion};
use fleet::{simulate_warmup, ServerConfig};
use jumpstart::JumpStartOptions;

fn bench_warmup(c: &mut Criterion) {
    let lab = Lab::small();
    let params = lab.warmup_fig4();
    let pkg = lab.package(&JumpStartOptions::default());

    let mut group = c.benchmark_group("warmup");
    group.sample_size(10);
    group.bench_function("simulate_no_jumpstart_10min", |b| {
        b.iter(|| {
            simulate_warmup(
                &lab.app,
                &lab.model,
                &lab.mix,
                &ServerConfig {
                    params,
                    jumpstart: None,
                },
            )
        })
    });
    group.bench_function("simulate_jumpstart_10min", |b| {
        b.iter(|| {
            simulate_warmup(
                &lab.app,
                &lab.model,
                &lab.mix,
                &ServerConfig {
                    params,
                    jumpstart: Some(&pkg),
                },
            )
        })
    });
    group.finish();

    // Print the Fig. 4 headline alongside the timing run.
    let js = simulate_warmup(
        &lab.app,
        &lab.model,
        &lab.mix,
        &ServerConfig {
            params,
            jumpstart: Some(&pkg),
        },
    );
    let nojs = simulate_warmup(
        &lab.app,
        &lab.model,
        &lab.mix,
        &ServerConfig {
            params,
            jumpstart: None,
        },
    );
    let (lj, ln) = (
        js.capacity_loss_over(600_000),
        nojs.capacity_loss_over(600_000),
    );
    println!(
        "[warmup] capacity loss 10min: no-JS {:.1}% JS {:.1}% reduction {:.1}% (paper: 78.3/35.3/54.9)",
        ln * 100.0,
        lj * 100.0,
        (ln - lj) / ln * 100.0
    );
}

criterion_group!(benches, bench_warmup);
criterion_main!(benches);
