//! Consumer boot benchmarks: the pipelined work-stealing translate/emit
//! overlap of `jumpstart::consume`, sequential vs parallel, plus the
//! zero-copy decode path (`consume_bytes`).

use bench::Lab;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use jit::JitOptions;
use jumpstart::{consume, consume_bytes, JumpStartOptions};

fn bench_boot(c: &mut Criterion) {
    let lab = Lab::small();
    let opts = JumpStartOptions::default();
    let pkg = lab.package(&opts);
    let bytes = pkg.serialize();
    let compile_bytes = consume(&lab.app.repo, &pkg, JitOptions::default(), &opts, 1)
        .expect("healthy package boots")
        .compile_bytes;
    println!("[boot] optimized code: {} KB", compile_bytes / 1024);

    let mut group = c.benchmark_group("boot");
    group.throughput(Throughput::Bytes(compile_bytes));
    group.bench_function("consume_seq", |b| {
        b.iter(|| consume(&lab.app.repo, &pkg, JitOptions::default(), &opts, 1).expect("boots"))
    });
    group.bench_function("consume_par4", |b| {
        b.iter(|| consume(&lab.app.repo, &pkg, JitOptions::default(), &opts, 4).expect("boots"))
    });
    group.bench_function("consume_par4_early50", |b| {
        let early = JumpStartOptions {
            early_serve_frac: 0.5,
            ..Default::default()
        };
        b.iter(|| consume(&lab.app.repo, &pkg, JitOptions::default(), &early, 4).expect("boots"))
    });
    group.bench_function("consume_bytes_par4", |b| {
        b.iter(|| {
            consume_bytes(&lab.app.repo, &bytes, JitOptions::default(), &opts, 4).expect("boots")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_boot);
criterion_main!(benches);
