//! Compile-cost microbenchmarks: `translate_optimized` wall time and
//! translated-bytes throughput (so Criterion reports both ns and ns/byte),
//! the effect of the shared inline-body template cache, and the
//! incremental `exttsp_order` against the reference implementation on
//! synthetic CFGs of realistic sizes.

use bench::Lab;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use jit::{translate_optimized, translate_optimized_with, JitOptions, TemplateSource};
use jumpstart::TemplateCache;
use layout::{exttsp_order, exttsp_order_reference, BlockEdge, BlockNode, ExtTspParams};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn no_slots(_c: bytecode::ClassId, _p: bytecode::StrId) -> Option<u16> {
    None
}

fn bench_translate(c: &mut Criterion) {
    let lab = Lab::small();
    let tier = &lab.truth.tier;
    let ctx = &lab.truth.ctx;
    let opts = JitOptions::default();
    let funcs: Vec<_> = tier.functions_by_heat().into_iter().take(24).collect();

    // Total bytes the batch emits, so Criterion reports throughput
    // (bytes/s — the inverse of ns/byte) next to the absolute time.
    let bytes: u64 = funcs
        .iter()
        .map(|&f| {
            translate_optimized(
                &lab.app.repo,
                f,
                tier,
                ctx,
                opts.weights,
                opts.inline,
                &no_slots,
            )
            .layout_blocks()
            .iter()
            .map(|b| b.size as u64)
            .sum::<u64>()
        })
        .sum();

    let mut group = c.benchmark_group("translate_optimized");
    group.throughput(Throughput::Bytes(bytes));
    group.bench_function("hot24_uncached", |b| {
        b.iter(|| {
            for &f in &funcs {
                translate_optimized(
                    &lab.app.repo,
                    f,
                    tier,
                    ctx,
                    opts.weights,
                    opts.inline,
                    &no_slots,
                );
            }
        })
    });
    // Shared template cache pre-warmed once, as in a steady boot: inline
    // sites splice memoized bodies instead of re-translating the callee.
    let templates = TemplateCache::default();
    group.bench_function("hot24_cached_templates", |b| {
        b.iter(|| {
            for &f in &funcs {
                translate_optimized_with(
                    &lab.app.repo,
                    f,
                    tier,
                    ctx,
                    opts.weights,
                    opts.inline,
                    &no_slots,
                    Some(&templates as &dyn TemplateSource),
                );
            }
        })
    });
    group.finish();
}

fn cfg(n: usize, seed: u64) -> (Vec<BlockNode>, Vec<BlockEdge>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let blocks = (0..n)
        .map(|_| BlockNode {
            size: rng.gen_range(8..64),
            weight: rng.gen_range(0..1000),
        })
        .collect();
    let edges = (0..2 * n)
        .map(|_| BlockEdge {
            src: rng.gen_range(0..n),
            dst: rng.gen_range(0..n),
            weight: rng.gen_range(0..500),
        })
        .collect();
    (blocks, edges)
}

fn bench_exttsp(c: &mut Criterion) {
    let mut group = c.benchmark_group("exttsp_incremental");
    for n in [16usize, 48, 96, 200] {
        let (blocks, edges) = cfg(n, n as u64);
        group.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
            b.iter(|| exttsp_order(&blocks, &edges, &ExtTspParams::default()))
        });
        group.bench_with_input(BenchmarkId::new("reference", n), &n, |b, _| {
            b.iter(|| exttsp_order_reference(&blocks, &edges, &ExtTspParams::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_translate, bench_exttsp);
criterion_main!(benches);
