//! Ablation benchmarks (Fig. 6 and DESIGN.md §6): one steady-state
//! measurement per layout knob, plus the algorithm-level baselines the
//! paper compares against implicitly (Pettis–Hansen vs C3, hotness vs
//! affinity property ordering).

use bench::Lab;
use criterion::{criterion_group, criterion_main, Criterion};
use fleet::{measure_steady_state, SteadyConfig, SteadyParams};
use jumpstart::{FuncSort, JumpStartOptions, PropReorder};

fn bench_ablation(c: &mut Criterion) {
    let lab = Lab::small();
    let params = SteadyParams {
        warm_requests: 100,
        measure_requests: 300,
        threads: 2,
        ..Default::default()
    };

    let affinity = SteadyConfig {
        name: "prop-affinity",
        js: JumpStartOptions {
            prop_reorder: PropReorder::Affinity,
            ..JumpStartOptions::without_optimizations()
        },
        no_jumpstart: false,
    };
    let heat_order = SteadyConfig {
        name: "heat-order",
        js: JumpStartOptions {
            func_sort: FuncSort::SourceOrder,
            ..JumpStartOptions::without_optimizations()
        },
        no_jumpstart: false,
    };
    let configs = [
        SteadyConfig::jumpstart_no_opts(),
        SteadyConfig::bb_layout_only(),
        SteadyConfig::func_layout_only(),
        SteadyConfig::prop_reorder_only(),
        affinity,
        heat_order,
    ];

    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    for cfg in configs {
        group.bench_function(cfg.name, |b| {
            b.iter(|| measure_steady_state(&lab.app, &lab.mix, &lab.truth, &cfg, &params))
        });
    }
    group.finish();

    let base = measure_steady_state(
        &lab.app,
        &lab.mix,
        &lab.truth,
        &SteadyConfig::jumpstart_no_opts(),
        &params,
    );
    for cfg in [SteadyConfig::prop_reorder_only(), affinity] {
        let o = measure_steady_state(&lab.app, &lab.mix, &lab.truth, &cfg, &params);
        println!(
            "[ablation] {}: {:+.2}% vs no-opts",
            o.name,
            o.report.speedup_vs(&base.report)
        );
    }
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
