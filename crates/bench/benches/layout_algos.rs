//! Layout-algorithm benchmarks: Ext-TSP vs its greedy fallback, C3 vs
//! Pettis–Hansen, and property reordering, over synthetic graphs of
//! realistic sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use layout::{
    c3_order, exttsp_order, exttsp_score, pettis_hansen_order, reorder_props_by_hotness, BlockEdge,
    BlockNode, CallArc, ExtTspParams, FuncNode, PropAccess,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn cfg(n: usize, seed: u64) -> (Vec<BlockNode>, Vec<BlockEdge>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let blocks = (0..n)
        .map(|_| BlockNode {
            size: rng.gen_range(8..64),
            weight: rng.gen_range(0..1000),
        })
        .collect();
    let edges = (0..2 * n)
        .map(|_| BlockEdge {
            src: rng.gen_range(0..n),
            dst: rng.gen_range(0..n),
            weight: rng.gen_range(0..500),
        })
        .collect();
    (blocks, edges)
}

fn bench_layout(c: &mut Criterion) {
    let mut group = c.benchmark_group("exttsp");
    for n in [16usize, 64, 200] {
        let (blocks, edges) = cfg(n, n as u64);
        group.bench_with_input(BenchmarkId::new("order", n), &n, |b, _| {
            b.iter(|| exttsp_order(&blocks, &edges, &ExtTspParams::default()))
        });
    }
    // The near-linear fallback on a large function.
    let (blocks, edges) = cfg(2000, 7);
    group.bench_function("order_fallback_2000", |b| {
        b.iter(|| exttsp_order(&blocks, &edges, &ExtTspParams::default()))
    });
    group.finish();

    // Quality datapoint: score improvement over source order.
    let (blocks, edges) = cfg(64, 3);
    let p = ExtTspParams::default();
    let src: Vec<usize> = (0..blocks.len()).collect();
    let opt = exttsp_order(&blocks, &edges, &p);
    println!(
        "[layout] exttsp score: source {:.0} -> optimized {:.0}",
        exttsp_score(&blocks, &edges, &src, &p),
        exttsp_score(&blocks, &edges, &opt, &p)
    );

    let mut rng = SmallRng::seed_from_u64(11);
    let n = 800;
    let funcs: Vec<FuncNode> = (0..n)
        .map(|_| FuncNode {
            size: rng.gen_range(64..2048),
            weight: rng.gen_range(0..10_000),
        })
        .collect();
    let arcs: Vec<CallArc> = (0..4 * n)
        .map(|_| CallArc {
            caller: rng.gen_range(0..n),
            callee: rng.gen_range(0..n),
            weight: rng.gen_range(0..1000),
        })
        .collect();
    let mut group = c.benchmark_group("func_sort");
    group.bench_function("c3_800", |b| b.iter(|| c3_order(&funcs, &arcs, 16384)));
    group.bench_function("pettis_hansen_800", |b| {
        b.iter(|| pettis_hansen_order(&funcs, &arcs, 16384))
    });
    group.finish();

    let props: Vec<PropAccess<u32>> = (0..64)
        .map(|i| PropAccess {
            prop: i,
            count: ((i * 37) % 100) as u64,
        })
        .collect();
    c.bench_function("prop_reorder_hotness_64", |b| {
        b.iter(|| reorder_props_by_hotness(&props))
    });
}

criterion_group!(benches, bench_layout);
criterion_main!(benches);
