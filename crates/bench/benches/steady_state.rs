//! Steady-state benchmarks (Fig. 5): times the full
//! package→consume→replay pipeline for the Jump-Start and no-Jump-Start
//! configurations and prints the measured speedup.

use bench::Lab;
use criterion::{criterion_group, criterion_main, Criterion};
use fleet::{measure_steady_state, SteadyConfig, SteadyParams};

fn bench_steady(c: &mut Criterion) {
    // Bench-scale lab: the steady-state effects need real cache pressure;
    // the tiny app fits in L1 and measures noise.
    let lab = Lab::bench_scale();
    let params = SteadyParams {
        warm_requests: 300,
        measure_requests: 1200,
        threads: 4,
        ..Default::default()
    };

    let mut group = c.benchmark_group("steady_state");
    group.sample_size(10);
    for cfg in [SteadyConfig::jumpstart_full(), SteadyConfig::no_jumpstart()] {
        group.bench_function(cfg.name, |b| {
            b.iter(|| measure_steady_state(&lab.app, &lab.mix, &lab.truth, &cfg, &params))
        });
    }
    group.finish();

    let js = measure_steady_state(
        &lab.app,
        &lab.mix,
        &lab.truth,
        &SteadyConfig::jumpstart_full(),
        &params,
    );
    let nojs = measure_steady_state(
        &lab.app,
        &lab.mix,
        &lab.truth,
        &SteadyConfig::no_jumpstart(),
        &params,
    );
    println!(
        "[steady] speedup JS vs no-JS: {:+.2}% (paper: +5.4%)",
        js.report.speedup_vs(&nojs.report)
    );
}

criterion_group!(benches, bench_steady);
criterion_main!(benches);
