//! Hot/cold code splitting.
//!
//! HHVM applies hot/cold splitting together with basic-block layout, driven
//! by the same profile counters (paper §V-A). Cold blocks (never or rarely
//! executed: side exits, error paths) are moved to a separate "cold" code
//! region so the hot path stays dense in the I-cache and I-TLB.

/// Result of splitting: both lists preserve the relative order of the input
/// layout.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HotColdSplit {
    /// Blocks placed in the hot region.
    pub hot: Vec<usize>,
    /// Blocks placed in the cold region.
    pub cold: Vec<usize>,
}

/// Splits a laid-out function's blocks into hot and cold regions.
///
/// A block is cold when its execution count is `<= cold_threshold`, or
/// below `cold_fraction` of the entry block's count. The entry block is
/// always hot.
pub fn split_hot_cold(
    order: &[usize],
    weights: &[u64],
    cold_threshold: u64,
    cold_fraction: f64,
) -> HotColdSplit {
    let entry_weight = weights.first().copied().unwrap_or(0);
    // Ceil, not truncate: a block is cold when `w < entry * fraction`, so
    // the integer cut must be the smallest u64 with `w < cut` equivalent to
    // the real-valued test. Truncation (e.g. entry 199 × 0.01 → cut 1)
    // would keep weight-1 blocks hot that the fraction says are cold.
    let frac_cut = (entry_weight as f64 * cold_fraction).ceil() as u64;
    let mut split = HotColdSplit::default();
    for &b in order {
        let w = weights[b];
        let is_cold = b != 0 && (w <= cold_threshold || w < frac_cut);
        if is_cold {
            split.cold.push(b);
        } else {
            split.hot.push(b);
        }
    }
    split
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_weight_blocks_go_cold() {
        let order = vec![0, 1, 2, 3];
        let weights = vec![100, 0, 50, 0];
        let s = split_hot_cold(&order, &weights, 0, 0.0);
        assert_eq!(s.hot, vec![0, 2]);
        assert_eq!(s.cold, vec![1, 3]);
    }

    #[test]
    fn entry_never_goes_cold() {
        let order = vec![0, 1];
        let weights = vec![0, 10];
        let s = split_hot_cold(&order, &weights, 0, 0.0);
        assert_eq!(s.hot, vec![0, 1]);
        assert!(s.cold.is_empty());
    }

    #[test]
    fn fraction_threshold_moves_rare_blocks() {
        let order = vec![0, 1, 2];
        let weights = vec![1000, 5, 999];
        // Below 1% of entry -> cold.
        let s = split_hot_cold(&order, &weights, 0, 0.01);
        assert_eq!(s.hot, vec![0, 2]);
        assert_eq!(s.cold, vec![1]);
    }

    #[test]
    fn relative_order_is_preserved() {
        let order = vec![0, 3, 1, 2];
        let weights = vec![10, 0, 0, 10];
        let s = split_hot_cold(&order, &weights, 0, 0.0);
        assert_eq!(s.hot, vec![0, 3]);
        assert_eq!(s.cold, vec![1, 2]);
    }

    #[test]
    fn fraction_cutoff_rounds_up_not_down() {
        // entry 199 × 0.01 = 1.99: weight-1 blocks sit below 1% of the
        // entry count and must go cold. A truncating cut (1) kept them
        // hot; the ceil cut (2) classifies them correctly.
        let order = vec![0, 1, 2];
        let weights = vec![199, 1, 150];
        let s = split_hot_cold(&order, &weights, 0, 0.01);
        assert_eq!(s.hot, vec![0, 2]);
        assert_eq!(s.cold, vec![1]);
        // Exact multiples stay on the hot side of the strict `<` test:
        // entry 200 × 0.01 = 2.0, so a weight-2 block is not cold.
        let s = split_hot_cold(&[0, 1], &[200, 2], 0, 0.01);
        assert_eq!(s.hot, vec![0, 1]);
        assert!(s.cold.is_empty());
    }

    #[test]
    fn empty_input_is_empty_output() {
        let s = split_hot_cold(&[], &[], 0, 0.0);
        assert!(s.hot.is_empty() && s.cold.is_empty());
    }
}
