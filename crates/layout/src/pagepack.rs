//! Global huge-page code packing (BOLT-style, see PAPERS.md).
//!
//! Per-function layout (Ext-TSP block order + hot/cold splitting) and the
//! C3 function sort decide *relative* order; this module decides *where
//! the bytes land at page granularity*. Hot parts of all functions are
//! packed densely into simulated 2 MB huge-page bins — greedy, in the C3
//! emission order, so call-graph-adjacent clusters share a page bin — and
//! a hot part is never split across a huge-page boundary unless it is
//! bigger than one page. Cold parts are exiled to a separate 4 KiB-page
//! region. The result is explicit per-function hot/cold offsets, which the
//! JIT code cache turns into addresses and the two-level iTLB model in
//! `uarch` turns into miss rates.
//!
//! [`PagePacker`] is deliberately *incremental*: the consumer boot emits
//! functions one at a time through a reorder buffer, and the packer's
//! placement depends only on the extents placed before it — so streaming
//! emission and the batch [`pack_extents`] plan are byte-identical, which
//! `jslayout --check` gates.

/// Simulated huge-page size (2 MiB, x86_64 PMD page).
pub const HUGE_PAGE_BYTES: u64 = 2 << 20;

/// Base page size (4 KiB).
pub const SMALL_PAGE_BYTES: u64 = 4096;

/// The global-layout kill switch (threaded through `JitOptions` and the
/// consumer plan-cache key; the paper's §VI kill-switch discipline).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LayoutPlanOptions {
    /// Pack hot text into huge-page bins (and map it with 2 MiB pages in
    /// the TLB model). Off = plain bump allocation.
    pub hugepage_pack: bool,
    /// Exile optimized cold parts to a dedicated 4 KiB-page cold region
    /// (with hot→cold stub accounting) instead of the shared cold area.
    pub global_hotcold: bool,
}

impl Default for LayoutPlanOptions {
    fn default() -> Self {
        Self {
            hugepage_pack: true,
            global_hotcold: true,
        }
    }
}

impl LayoutPlanOptions {
    /// Both passes off: bit-for-bit the pre-pagepack placement.
    pub fn disabled() -> Self {
        Self {
            hugepage_pack: false,
            global_hotcold: false,
        }
    }
}

/// One function's contribution to the global plan: total bytes of its hot
/// part (including any hot→cold stubs) and of its cold part.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FuncExtent {
    /// Hot-part bytes (placed in the packed hot-text region).
    pub hot_bytes: u64,
    /// Cold-part bytes (placed in the cold region).
    pub cold_bytes: u64,
}

/// Where one function's parts landed, as offsets from the region bases.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlacedExtent {
    /// Offset of the hot part in the hot-text region.
    pub hot_offset: u64,
    /// Offset of the cold part in the cold region.
    pub cold_offset: u64,
}

/// Packing telemetry (the `jslayout` hot-text density metrics).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PagePackStats {
    /// Extents placed.
    pub extents: u64,
    /// Hot bytes placed (excluding padding).
    pub hot_bytes: u64,
    /// Cold bytes placed.
    pub cold_bytes: u64,
    /// Bytes lost to boundary padding in the hot region.
    pub pad_bytes: u64,
    /// Extents that were bumped to the next huge-page bin to avoid a
    /// boundary split.
    pub boundary_pads: u64,
}

/// Greedy streaming huge-page bin packer over function extents.
#[derive(Clone, Debug)]
pub struct PagePacker {
    opts: LayoutPlanOptions,
    hugepage_bytes: u64,
    hot_cursor: u64,
    cold_cursor: u64,
    stats: PagePackStats,
}

impl PagePacker {
    /// A packer with the standard 2 MiB huge-page bins.
    pub fn new(opts: LayoutPlanOptions) -> Self {
        Self::with_page_bytes(opts, HUGE_PAGE_BYTES)
    }

    /// A packer with custom bin size (tests use small bins).
    ///
    /// # Panics
    ///
    /// Panics if `hugepage_bytes` is not a power of two.
    pub fn with_page_bytes(opts: LayoutPlanOptions, hugepage_bytes: u64) -> Self {
        assert!(
            hugepage_bytes.is_power_of_two(),
            "huge-page size must be a power of two"
        );
        Self {
            opts,
            hugepage_bytes,
            hot_cursor: 0,
            cold_cursor: 0,
            stats: PagePackStats::default(),
        }
    }

    /// The options the packer runs under.
    pub fn options(&self) -> LayoutPlanOptions {
        self.opts
    }

    /// Places one function's hot part; returns its offset in the hot-text
    /// region. With `hugepage_pack` the part is kept inside a single
    /// huge-page bin (padding to the next bin when it would straddle a
    /// boundary) unless it is larger than one bin; without, this is plain
    /// bump allocation.
    pub fn place_hot(&mut self, bytes: u64) -> u64 {
        self.stats.extents += 1;
        if self.opts.hugepage_pack && bytes > 0 && bytes <= self.hugepage_bytes {
            let room = self.hugepage_bytes - self.hot_cursor % self.hugepage_bytes;
            if bytes > room {
                self.stats.pad_bytes += room;
                self.stats.boundary_pads += 1;
                self.hot_cursor += room;
            }
        }
        let off = self.hot_cursor;
        self.hot_cursor += bytes;
        self.stats.hot_bytes += bytes;
        off
    }

    /// Places one function's cold part; returns its offset in the cold
    /// region (always plain bump allocation on 4 KiB pages).
    pub fn place_cold(&mut self, bytes: u64) -> u64 {
        let off = self.cold_cursor;
        self.cold_cursor += bytes;
        self.stats.cold_bytes += bytes;
        off
    }

    /// Bytes consumed in the hot region so far, padding included.
    pub fn hot_used(&self) -> u64 {
        self.hot_cursor
    }

    /// Bytes consumed in the cold region so far.
    pub fn cold_used(&self) -> u64 {
        self.cold_cursor
    }

    /// Huge-page bins touched by the hot region (0 when packing is off).
    pub fn huge_pages_used(&self) -> u64 {
        if !self.opts.hugepage_pack || self.hot_cursor == 0 {
            return 0;
        }
        self.hot_cursor.div_ceil(self.hugepage_bytes)
    }

    /// Mean hot bytes resident per huge page (the BOLT density metric);
    /// 0 when packing is off or nothing was placed.
    pub fn hot_bytes_per_huge_page(&self) -> f64 {
        let pages = self.huge_pages_used();
        if pages == 0 {
            return 0.0;
        }
        self.stats.hot_bytes as f64 / pages as f64
    }

    /// Packing telemetry so far.
    pub fn stats(&self) -> PagePackStats {
        self.stats
    }
}

/// A complete global plan over a function sequence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PagePackPlan {
    /// Per-input-function placements (same indexing as the input).
    pub placements: Vec<PlacedExtent>,
    /// Total hot-region bytes, padding included.
    pub hot_used: u64,
    /// Total cold-region bytes.
    pub cold_used: u64,
    /// Packing telemetry.
    pub stats: PagePackStats,
}

/// Packs `extents` (in C3 emission order) into a global plan. Equivalent
/// to feeding the same sequence through [`PagePacker`] one extent at a
/// time — the reproducibility oracle for the streaming code-cache path.
pub fn pack_extents(extents: &[FuncExtent], opts: LayoutPlanOptions) -> PagePackPlan {
    let mut packer = PagePacker::new(opts);
    let placements = extents
        .iter()
        .map(|e| PlacedExtent {
            hot_offset: packer.place_hot(e.hot_bytes),
            cold_offset: packer.place_cold(e.cold_bytes),
        })
        .collect();
    PagePackPlan {
        placements,
        hot_used: packer.hot_used(),
        cold_used: packer.cold_used(),
        stats: packer.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packed(opts: LayoutPlanOptions, page: u64, sizes: &[u64]) -> (Vec<u64>, PagePacker) {
        let mut p = PagePacker::with_page_bytes(opts, page);
        let offs = sizes.iter().map(|&s| p.place_hot(s)).collect();
        (offs, p)
    }

    #[test]
    fn disabled_packer_is_plain_bump_allocation() {
        let (offs, p) = packed(LayoutPlanOptions::disabled(), 4096, &[100, 4000, 200]);
        assert_eq!(offs, vec![0, 100, 4100]);
        assert_eq!(p.stats().pad_bytes, 0);
        assert_eq!(p.huge_pages_used(), 0);
    }

    #[test]
    fn packing_never_splits_a_part_across_a_bin_boundary() {
        let opts = LayoutPlanOptions::default();
        // 100 + 4000 > 4096: the 4000-byte part skips to the next bin.
        let (offs, p) = packed(opts, 4096, &[100, 4000, 90]);
        assert_eq!(offs[0], 0);
        assert_eq!(offs[1], 4096, "second part starts on a fresh bin");
        assert_eq!(offs[2], 8096, "third part packs after the second");
        assert_eq!(p.stats().pad_bytes, 4096 - 100);
        assert_eq!(p.stats().boundary_pads, 1);
        assert_eq!(p.huge_pages_used(), 2);
    }

    #[test]
    fn oversized_parts_may_straddle_boundaries() {
        let opts = LayoutPlanOptions::default();
        let (offs, p) = packed(opts, 4096, &[100, 10_000]);
        // Bigger than one bin: placed where the cursor is, no padding.
        assert_eq!(offs[1], 100);
        assert_eq!(p.stats().pad_bytes, 0);
        assert_eq!(p.huge_pages_used(), 3); // 10_100 bytes / 4096
    }

    #[test]
    fn exact_fit_fills_the_bin_without_padding() {
        let opts = LayoutPlanOptions::default();
        let (offs, p) = packed(opts, 4096, &[2048, 2048, 64]);
        assert_eq!(offs, vec![0, 2048, 4096]);
        assert_eq!(p.stats().pad_bytes, 0);
    }

    #[test]
    fn cold_parts_bump_allocate_independently() {
        let mut p = PagePacker::with_page_bytes(LayoutPlanOptions::default(), 4096);
        assert_eq!(p.place_cold(300), 0);
        assert_eq!(p.place_cold(50), 300);
        assert_eq!(p.cold_used(), 350);
        assert_eq!(p.hot_used(), 0);
    }

    #[test]
    fn batch_plan_matches_streaming_placement() {
        let extents: Vec<FuncExtent> = [(100u64, 10u64), (4000, 0), (90, 33), (5000, 1)]
            .iter()
            .map(|&(h, c)| FuncExtent {
                hot_bytes: h,
                cold_bytes: c,
            })
            .collect();
        for opts in [
            LayoutPlanOptions::default(),
            LayoutPlanOptions::disabled(),
            LayoutPlanOptions {
                hugepage_pack: true,
                global_hotcold: false,
            },
        ] {
            let mut p = PagePacker::new(opts);
            let streamed: Vec<PlacedExtent> = extents
                .iter()
                .map(|e| PlacedExtent {
                    hot_offset: p.place_hot(e.hot_bytes),
                    cold_offset: p.place_cold(e.cold_bytes),
                })
                .collect();
            let plan = pack_extents(&extents, opts);
            assert_eq!(plan.placements, streamed);
            assert_eq!(plan.hot_used, p.hot_used());
            assert_eq!(plan.cold_used, p.cold_used());
            assert_eq!(plan.stats, p.stats());
        }
    }

    #[test]
    fn density_metric_reports_hot_bytes_per_page() {
        let mut p = PagePacker::with_page_bytes(LayoutPlanOptions::default(), 4096);
        p.place_hot(2048);
        p.place_hot(4000); // pads to bin 2
        assert_eq!(p.huge_pages_used(), 2);
        let density = p.hot_bytes_per_huge_page();
        assert!((density - (2048.0 + 4000.0) / 2.0).abs() < 1e-9);
    }
}
