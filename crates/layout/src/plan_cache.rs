//! A sharded, read-mostly cache of computed block-layout plans.
//!
//! The consumer boot spends most of its CPU in [`crate::exttsp_order`], and
//! many optimized units share identical layout inputs (same block sizes,
//! weights and edges — e.g. every instantiation of a small accessor).
//! Caching the computed plan by a structural fingerprint of those inputs
//! removes that repeated work while provably preserving the emitted
//! layout: keys compare the **full inputs**, not just the fingerprint, so
//! a hash collision degrades to a miss, never to a wrong plan.
//!
//! The cache stores layout-level outputs ([`CachedPlan`]); the JIT's
//! `LayoutPlan` is a field-for-field mirror (this crate sits below the JIT
//! in the dependency order and cannot name that type).

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use crate::exttsp::{BlockEdge, BlockNode};

/// Key of one cached plan: a precomputed fingerprint of the layout inputs
/// plus the inputs themselves and a caller-chosen tag for anything else
/// the plan depends on (layout options, parameter sets).
#[derive(Clone, Debug, PartialEq)]
pub struct PlanKey {
    /// Structural fingerprint of `(tag, blocks, edges)`; used for shard
    /// selection and hashing only — equality checks the full inputs.
    pub fingerprint: u64,
    /// Caller tag covering plan inputs outside `blocks`/`edges` (e.g. the
    /// layout options in effect). Plans computed under different tags
    /// never alias.
    pub tag: u64,
    /// The block nodes the plan was computed from.
    pub blocks: Vec<BlockNode>,
    /// The edges the plan was computed from.
    pub edges: Vec<BlockEdge>,
}

// All fields compare exactly (no NaN-style partial equality), so the
// derived PartialEq is a valid total equality.
impl Eq for PlanKey {}

impl Hash for PlanKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.fingerprint ^ self.tag);
    }
}

/// The outputs a plan cache stores — mirrors the JIT's `LayoutPlan`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CachedPlan {
    /// Blocks placed in the hot region, in order.
    pub hot: Vec<usize>,
    /// Blocks split off to the cold region, in order.
    pub cold: Vec<usize>,
    /// Total bytes of the hot blocks.
    pub hot_bytes: u64,
    /// Total bytes of the cold blocks.
    pub cold_bytes: u64,
}

const SHARDS: usize = 16;

/// A sharded `RwLock` cache of layout plans, safe to share across
/// translation worker threads (reads take shared locks; a miss takes one
/// shard's write lock only after computing the plan outside any lock).
pub struct PlanCache {
    shards: Vec<RwLock<HashMap<PlanKey, CachedPlan>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new()
    }
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &PlanKey) -> &RwLock<HashMap<PlanKey, CachedPlan>> {
        &self.shards[(key.fingerprint ^ key.tag) as usize % SHARDS]
    }

    /// Returns the cached plan for `key`, or computes, caches and returns
    /// it. `compute` receives the key (so it can plan from the stored
    /// inputs) and runs outside any lock — concurrent misses on the same
    /// key may compute twice; the plan is a pure function of the key, so
    /// either result is correct and the first insert wins.
    pub fn get_or_insert_with(
        &self,
        key: PlanKey,
        compute: impl FnOnce(&PlanKey) -> CachedPlan,
    ) -> CachedPlan {
        let shard = self.shard(&key);
        if let Some(hit) = shard.read().expect("plan cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return hit.clone();
        }
        let plan = compute(&key);
        self.misses.fetch_add(1, Ordering::Relaxed);
        shard
            .write()
            .expect("plan cache poisoned")
            .entry(key)
            .or_insert(plan)
            .clone()
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to compute a plan.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct plans cached.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("plan cache poisoned").len())
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(fp: u64, tag: u64, w: u64) -> PlanKey {
        PlanKey {
            fingerprint: fp,
            tag,
            blocks: vec![BlockNode { size: 4, weight: w }],
            edges: vec![],
        }
    }

    fn plan(hot: Vec<usize>) -> CachedPlan {
        CachedPlan {
            hot,
            cold: vec![],
            hot_bytes: 4,
            cold_bytes: 0,
        }
    }

    #[test]
    fn hit_returns_cached_value_without_recompute() {
        let cache = PlanCache::new();
        let p = cache.get_or_insert_with(key(7, 0, 1), |_| plan(vec![0]));
        assert_eq!(p.hot, vec![0]);
        let p2 = cache.get_or_insert_with(key(7, 0, 1), |_| unreachable!("must hit"));
        assert_eq!(p, p2);
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 1, 1));
    }

    #[test]
    fn fingerprint_collision_is_a_miss_not_a_wrong_plan() {
        // Same fingerprint, different inputs: full-key equality must keep
        // the entries separate.
        let cache = PlanCache::new();
        cache.get_or_insert_with(key(7, 0, 1), |_| plan(vec![0]));
        let p = cache.get_or_insert_with(key(7, 0, 2), |_| plan(vec![0, 1]));
        assert_eq!(p.hot, vec![0, 1]);
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (0, 2, 2));
    }

    #[test]
    fn tag_separates_otherwise_identical_keys() {
        let cache = PlanCache::new();
        cache.get_or_insert_with(key(7, 1, 1), |_| plan(vec![0]));
        let p = cache.get_or_insert_with(key(7, 2, 1), |k| {
            assert_eq!(k.tag, 2);
            plan(vec![0, 1])
        });
        assert_eq!(p.hot, vec![0, 1]);
        assert_eq!(cache.misses(), 2);
    }
}
