//! Object property reordering (paper §V-C).
//!
//! Given per-property access counts collected on Jump-Start seeders, decide
//! a physical order for each class layer: hot properties first, so the
//! first cache line of the object covers as many accesses as possible.
//!
//! The paper uses "a simple hotness metric" (descending access counts) and
//! leaves affinity-based ordering as future work; both are implemented
//! here, the affinity variant for the ablation benches.

/// Access statistics for one property of one class layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PropAccess<K> {
    /// Property key (e.g. an interned name id).
    pub prop: K,
    /// Total observed accesses (reads + writes).
    pub count: u64,
}

/// Orders one class layer's properties by descending hotness.
///
/// Ties preserve declared order (stable sort), so cold layouts degrade to
/// the declared layout instead of shuffling arbitrarily.
pub fn reorder_props_by_hotness<K: Clone>(props: &[PropAccess<K>]) -> Vec<K> {
    let mut idx: Vec<usize> = (0..props.len()).collect();
    idx.sort_by_key(|&i| std::cmp::Reverse(props[i].count));
    idx.into_iter().map(|i| props[i].prop.clone()).collect()
}

/// Orders one class layer's properties using pairwise *affinity*
/// (co-access) counts, falling back to hotness inside each affinity group.
///
/// `affinity[i][j]` counts how often props `i` and `j` were accessed within
/// the same request. Greedy chaining: repeatedly take the highest-affinity
/// pair whose chain endpoints are free, as in cache-conscious structure
/// layout [21]. This implements the paper's "future work" suggestion and is
/// evaluated in the ablation bench.
///
/// # Panics
///
/// Panics if `affinity` is not a `props.len()` × `props.len()` matrix.
pub fn reorder_props_by_affinity<K: Clone>(
    props: &[PropAccess<K>],
    affinity: &[Vec<u64>],
) -> Vec<K> {
    let n = props.len();
    assert_eq!(affinity.len(), n, "affinity matrix must be square");
    for row in affinity {
        assert_eq!(row.len(), n, "affinity matrix must be square");
    }
    if n <= 1 {
        return props.iter().map(|p| p.prop.clone()).collect();
    }
    // Collect pairs sorted by affinity.
    let mut pairs: Vec<(usize, usize, u64)> = Vec::new();
    for (i, row) in affinity.iter().enumerate() {
        for (j, &up) in row.iter().enumerate().skip(i + 1) {
            let w = up.max(affinity[j][i]);
            if w > 0 {
                pairs.push((i, j, w));
            }
        }
    }
    pairs.sort_by_key(|&(_, _, w)| std::cmp::Reverse(w));

    // Greedy path building (same union-find trick as block chaining).
    let mut next = vec![usize::MAX; n];
    let mut prev = vec![usize::MAX; n];
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for (i, j, _) in pairs {
        // Attach at free endpoints only.
        let (a, b) = if next[i] == usize::MAX && prev[j] == usize::MAX {
            (i, j)
        } else if next[j] == usize::MAX && prev[i] == usize::MAX {
            (j, i)
        } else {
            continue;
        };
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra == rb {
            continue;
        }
        parent[ra] = rb;
        next[a] = b;
        prev[b] = a;
    }
    // Emit chains; order chains by their total hotness.
    let mut chains: Vec<(u64, Vec<usize>)> = Vec::new();
    let mut seen = vec![false; n];
    for h in 0..n {
        if prev[h] != usize::MAX || seen[h] {
            continue;
        }
        let mut chain = Vec::new();
        let mut cur = h;
        let mut heat = 0u64;
        while cur != usize::MAX && !seen[cur] {
            seen[cur] = true;
            heat += props[cur].count;
            chain.push(cur);
            cur = next[cur];
        }
        chains.push((heat, chain));
    }
    chains.sort_by_key(|&(heat, _)| std::cmp::Reverse(heat));
    chains
        .into_iter()
        .flat_map(|(_, c)| c)
        .map(|i| props[i].prop.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(prop: &str, count: u64) -> PropAccess<String> {
        PropAccess {
            prop: prop.to_owned(),
            count,
        }
    }

    #[test]
    fn hotness_sorts_descending() {
        let props = vec![p("a", 5), p("b", 100), p("c", 20)];
        assert_eq!(reorder_props_by_hotness(&props), vec!["b", "c", "a"]);
    }

    #[test]
    fn ties_keep_declared_order() {
        let props = vec![p("a", 7), p("b", 7), p("c", 7)];
        assert_eq!(reorder_props_by_hotness(&props), vec!["a", "b", "c"]);
    }

    #[test]
    fn empty_and_singleton_layers() {
        assert!(reorder_props_by_hotness::<String>(&[]).is_empty());
        assert_eq!(reorder_props_by_hotness(&[p("only", 0)]), vec!["only"]);
    }

    #[test]
    fn affinity_groups_co_accessed_props() {
        // a+d always together (hot pair), b+c together (cooler).
        let props = vec![p("a", 50), p("b", 40), p("c", 40), p("d", 50)];
        let mut aff = vec![vec![0u64; 4]; 4];
        aff[0][3] = 100;
        aff[1][2] = 60;
        let order = reorder_props_by_affinity(&props, &aff);
        let pos: std::collections::HashMap<&str, usize> = order
            .iter()
            .enumerate()
            .map(|(i, k)| (k.as_str(), i))
            .collect();
        assert_eq!(pos["a"].abs_diff(pos["d"]), 1, "affine pair adjacent");
        assert_eq!(pos["b"].abs_diff(pos["c"]), 1, "affine pair adjacent");
        assert!(
            pos["a"].min(pos["d"]) < pos["b"].min(pos["c"]),
            "hotter chain first"
        );
    }

    #[test]
    fn affinity_falls_back_without_pairs() {
        let props = vec![p("a", 1), p("b", 9)];
        let aff = vec![vec![0; 2]; 2];
        let order = reorder_props_by_affinity(&props, &aff);
        assert_eq!(order, vec!["b", "a"]);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn affinity_rejects_bad_matrix() {
        let props = vec![p("a", 1), p("b", 2)];
        let _ = reorder_props_by_affinity(&props, &[vec![0; 2]]);
    }
}
