//! Ext-TSP basic-block reordering.
//!
//! The Extended-TSP objective (Newell & Pupyrev, "Improved Basic Block
//! Reordering") scores a layout by expected locality benefit:
//!
//! * a fallthrough edge (branch lands exactly at the end of its source)
//!   earns its full weight,
//! * a short **forward** jump earns `forward_weight * w * (1 - d/forward_dist)`,
//! * a short **backward** jump earns `backward_weight * w * (1 - d/backward_dist)`,
//! * long jumps earn nothing.
//!
//! The optimizer greedily merges chains of blocks while any merge improves
//! the score, then concatenates remaining chains by hotness density. The
//! entry block is pinned at the front (HHVM's translations are entered at
//! the top).

/// A block to lay out.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlockNode {
    /// Code size in bytes.
    pub size: u32,
    /// Execution count.
    pub weight: u64,
}

/// A weighted branch between blocks.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlockEdge {
    /// Source block index.
    pub src: usize,
    /// Destination block index.
    pub dst: usize,
    /// Number of times the branch was taken.
    pub weight: u64,
}

/// Tunables of the Ext-TSP objective (defaults follow the paper).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExtTspParams {
    /// Multiplier for short forward jumps.
    pub forward_weight: f64,
    /// Multiplier for short backward jumps.
    pub backward_weight: f64,
    /// Maximum rewarded forward-jump distance, in bytes.
    pub forward_dist: u64,
    /// Maximum rewarded backward-jump distance, in bytes.
    pub backward_dist: u64,
    /// Above this block count the optimizer falls back to greedy
    /// fallthrough chaining (keeps worst-case cost near-linear).
    pub max_exact_blocks: usize,
}

impl Default for ExtTspParams {
    fn default() -> Self {
        Self {
            forward_weight: 0.1,
            backward_weight: 0.1,
            forward_dist: 1024,
            backward_dist: 640,
            max_exact_blocks: 400,
        }
    }
}

/// Scores a complete layout under the Ext-TSP objective.
pub fn exttsp_score(
    blocks: &[BlockNode],
    edges: &[BlockEdge],
    order: &[usize],
    params: &ExtTspParams,
) -> f64 {
    let mut start = vec![0u64; blocks.len()];
    let mut pos = 0u64;
    for &b in order {
        start[b] = pos;
        pos += blocks[b].size as u64;
    }
    let mut score = 0.0;
    for e in edges {
        if e.weight == 0 {
            continue;
        }
        let src_end = start[e.src] + blocks[e.src].size as u64;
        let dst = start[e.dst];
        let w = e.weight as f64;
        if dst == src_end {
            score += w;
        } else if dst > src_end {
            let d = dst - src_end;
            if d < params.forward_dist {
                score += params.forward_weight * w * (1.0 - d as f64 / params.forward_dist as f64);
            }
        } else {
            let d = src_end - dst;
            if d < params.backward_dist {
                score +=
                    params.backward_weight * w * (1.0 - d as f64 / params.backward_dist as f64);
            }
        }
    }
    score
}

/// Contribution of one laid-out edge to the Ext-TSP objective: full weight
/// for an exact fallthrough, decayed weight for short forward/backward
/// jumps, nothing for long jumps. Shared by the scorer and the optimizer so
/// both produce bit-identical sums.
#[inline]
fn edge_gain(src_end: u64, dst: u64, w: f64, params: &ExtTspParams) -> f64 {
    if dst == src_end {
        w
    } else if dst > src_end {
        let d = dst - src_end;
        if d < params.forward_dist {
            params.forward_weight * w * (1.0 - d as f64 / params.forward_dist as f64)
        } else {
            0.0
        }
    } else {
        let d = src_end - dst;
        if d < params.backward_dist {
            params.backward_weight * w * (1.0 - d as f64 / params.backward_dist as f64)
        } else {
            0.0
        }
    }
}

/// Computes a block order maximizing the Ext-TSP score (greedy chain
/// merging). Block `0` (the entry) is always first in the result.
///
/// The greedy objective is identical to [`exttsp_order_reference`], but the
/// inner loop is incremental: chain scores are cached when a chain is
/// created, pair gains are memoized in a matrix and only the rows touching
/// the merged chain are recomputed, and a merged pair is scored by walking
/// just the edges adjacent to the two chains (in global edge order, so
/// every floating-point sum is performed in exactly the reference order —
/// the result is **bit-identical**, which the consumer's code-cache layout
/// digest depends on).
///
/// # Panics
///
/// Panics if an edge references a block index out of range.
pub fn exttsp_order(
    blocks: &[BlockNode],
    edges: &[BlockEdge],
    params: &ExtTspParams,
) -> Vec<usize> {
    let n = blocks.len();
    if n <= 1 {
        return (0..n).collect();
    }
    let _span = telemetry::span!("exttsp-order", "blocks" => n, "edges" => edges.len());
    for e in edges {
        assert!(e.src < n && e.dst < n, "edge references unknown block");
    }
    if n > params.max_exact_blocks {
        return greedy_fallthrough(blocks, edges);
    }

    // Chains, each a list of block indices; chain_of maps block -> chain id.
    let mut chains: Vec<Option<Vec<usize>>> = (0..n).map(|b| Some(vec![b])).collect();
    let mut chain_of: Vec<usize> = (0..n).collect();
    // Byte offset of each block within its chain, and each chain's size.
    let mut pos: Vec<u64> = vec![0; n];
    let mut chain_size: Vec<u64> = blocks.iter().map(|b| b.size as u64).collect();
    // Edge indices adjacent to each chain, ascending (global edge order).
    let mut touch: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, e) in edges.iter().enumerate() {
        touch[e.src].push(i as u32);
        if e.dst != e.src {
            touch[e.dst].push(i as u32);
        }
    }

    // Score of the concatenation a ++ b (or of a alone when a == b),
    // summing edge contributions in ascending global edge index — the
    // exact iteration order of the reference `chain_score`.
    let merged_score = |a: usize,
                        b: usize,
                        chain_of: &[usize],
                        pos: &[u64],
                        chain_size: &[u64],
                        touch: &[Vec<u32>]|
     -> f64 {
        let (ta, tb) = (&touch[a], &touch[b]);
        let place = |blk: usize| -> Option<u64> {
            let c = chain_of[blk];
            if c == a {
                Some(pos[blk])
            } else if c == b {
                Some(chain_size[a] + pos[blk])
            } else {
                None
            }
        };
        let mut s = 0.0;
        let (mut i, mut j) = (0usize, 0usize);
        loop {
            // Two-pointer merge of the sorted adjacency lists, deduped.
            let ei = match (ta.get(i), if a == b { None } else { tb.get(j) }) {
                (Some(&x), Some(&y)) => {
                    if x <= y {
                        i += 1;
                        if x == y {
                            j += 1;
                        }
                        x
                    } else {
                        j += 1;
                        y
                    }
                }
                (Some(&x), None) => {
                    i += 1;
                    x
                }
                (None, Some(&y)) => {
                    j += 1;
                    y
                }
                (None, None) => break,
            };
            let e = &edges[ei as usize];
            let (Some(sp), Some(dp)) = (place(e.src), place(e.dst)) else {
                continue;
            };
            s += edge_gain(sp + blocks[e.src].size as u64, dp, e.weight as f64, params);
        }
        s
    };

    // Cached per-chain scores (singletons only see their self-loops).
    let mut score: Vec<f64> = (0..n)
        .map(|c| merged_score(c, c, &chain_of, &pos, &chain_size, &touch))
        .collect();

    // Memoized pair gains. gain(a, b) depends only on the contents of
    // chains a and b, so a merge invalidates exactly one row and column.
    let mut gain: Vec<f64> = vec![f64::NEG_INFINITY; n * n];
    let pair_gain = |a: usize,
                     b: usize,
                     chain_of: &[usize],
                     pos: &[u64],
                     chain_size: &[u64],
                     touch: &[Vec<u32>],
                     score: &[f64]|
     -> f64 {
        merged_score(a, b, chain_of, pos, chain_size, touch) - score[a] - score[b]
    };
    let mut live: Vec<usize> = (0..n).collect();
    for &a in &live {
        for &b in &live {
            if a != b && b != chain_of[0] {
                gain[a * n + b] = pair_gain(a, b, &chain_of, &pos, &chain_size, &touch, &score);
            }
        }
    }

    loop {
        // Find the best merge (a, b) -> concat(a, b); scan order and the
        // strict `>` tie-break match the reference exactly.
        let mut best: Option<(usize, usize, f64)> = None;
        for &a in &live {
            for &b in &live {
                if a == b || b == chain_of[0] {
                    continue;
                }
                let g = gain[a * n + b];
                if g > 1e-9 && best.is_none_or(|(_, _, bg)| g > bg) {
                    best = Some((a, b, g));
                }
            }
        }
        let Some((a, b, _)) = best else { break };
        // The merged chain keeps slot `a`; its score is the pair score we
        // already agreed on (recomputed — still bit-identical).
        let new_score = merged_score(a, b, &chain_of, &pos, &chain_size, &touch);
        let cb = chains[b].take().expect("live");
        let shift = chain_size[a];
        for &blk in &cb {
            chain_of[blk] = a;
            pos[blk] += shift;
        }
        chain_size[a] += chain_size[b];
        score[a] = new_score;
        let tb = std::mem::take(&mut touch[b]);
        let ta = std::mem::take(&mut touch[a]);
        touch[a] = merge_sorted(&ta, &tb);
        live.retain(|&c| c != b);
        // Only pairs involving the merged chain changed.
        for &c in &live {
            if c == a {
                continue;
            }
            if a != chain_of[0] {
                gain[c * n + a] = pair_gain(c, a, &chain_of, &pos, &chain_size, &touch, &score);
            }
            if c != chain_of[0] {
                gain[a * n + c] = pair_gain(a, c, &chain_of, &pos, &chain_size, &touch, &score);
            }
        }
        let cb_blocks = cb;
        let ca = chains[a].as_mut().expect("live");
        ca.extend(cb_blocks);
    }

    concat_chains(chains, blocks)
}

/// Merges two ascending `u32` lists, dropping duplicates.
fn merge_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() || j < b.len() {
        match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) => {
                if x <= y {
                    i += 1;
                    if x == y {
                        j += 1;
                    }
                    out.push(x);
                } else {
                    j += 1;
                    out.push(y);
                }
            }
            (Some(&x), None) => {
                i += 1;
                out.push(x);
            }
            (None, Some(&y)) => {
                j += 1;
                out.push(y);
            }
            (None, None) => unreachable!(),
        }
    }
    out
}

/// Final concatenation: the entry chain first, then the rest by hotness
/// density (shared by the fast path and the reference implementation).
fn concat_chains(chains: Vec<Option<Vec<usize>>>, blocks: &[BlockNode]) -> Vec<usize> {
    let mut rest: Vec<Vec<usize>> = Vec::new();
    let mut first: Option<Vec<usize>> = None;
    for c in chains.into_iter().flatten() {
        if c[0] == 0 || c.contains(&0) {
            first = Some(c);
        } else {
            rest.push(c);
        }
    }
    rest.sort_by(|a, b| {
        let da = density(a, blocks);
        let db = density(b, blocks);
        db.partial_cmp(&da).unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut order = first.expect("entry chain exists");
    for c in rest {
        order.extend(c);
    }
    debug_assert_eq!(order.len(), blocks.len());
    order
}

/// The original O(chains² · edges) greedy merge, kept as the executable
/// specification: [`exttsp_order`] must return bit-identical output (the
/// oracle proptests compare them). Exposed for tests and benches only.
#[doc(hidden)]
pub fn exttsp_order_reference(
    blocks: &[BlockNode],
    edges: &[BlockEdge],
    params: &ExtTspParams,
) -> Vec<usize> {
    let n = blocks.len();
    if n <= 1 {
        return (0..n).collect();
    }
    for e in edges {
        assert!(e.src < n && e.dst < n, "edge references unknown block");
    }
    if n > params.max_exact_blocks {
        return greedy_fallthrough(blocks, edges);
    }

    // Chains, each a list of block indices; chain_of maps block -> chain id.
    let mut chains: Vec<Option<Vec<usize>>> = (0..n).map(|b| Some(vec![b])).collect();
    let mut chain_of: Vec<usize> = (0..n).collect();

    let chain_score = |chain: &[usize], blocks: &[BlockNode], edges: &[BlockEdge]| -> f64 {
        // Score of a chain in isolation: restrict to edges internal to it.
        let mut inside = vec![false; blocks.len()];
        for &b in chain {
            inside[b] = true;
        }
        let internal: Vec<BlockEdge> = edges
            .iter()
            .copied()
            .filter(|e| inside[e.src] && inside[e.dst])
            .collect();
        // Positions within the chain only.
        let mut start = vec![0u64; blocks.len()];
        let mut pos = 0u64;
        for &b in chain {
            start[b] = pos;
            pos += blocks[b].size as u64;
        }
        let mut s = 0.0;
        for e in &internal {
            let src_end = start[e.src] + blocks[e.src].size as u64;
            let dst = start[e.dst];
            let w = e.weight as f64;
            if dst == src_end {
                s += w;
            } else if dst > src_end {
                let d = dst - src_end;
                if d < params.forward_dist {
                    s += params.forward_weight * w * (1.0 - d as f64 / params.forward_dist as f64);
                }
            } else {
                let d = src_end - dst;
                if d < params.backward_dist {
                    s +=
                        params.backward_weight * w * (1.0 - d as f64 / params.backward_dist as f64);
                }
            }
        }
        s
    };

    loop {
        // Find the best merge (a, b) -> concat(a, b).
        let mut best: Option<(usize, usize, f64)> = None;
        let live: Vec<usize> = (0..chains.len()).filter(|&i| chains[i].is_some()).collect();
        for &a in &live {
            for &b in &live {
                if a == b {
                    continue;
                }
                // The entry block's chain can only be a prefix.
                if chains[b].as_ref().is_some_and(|c| c[0] == 0) {
                    continue;
                }
                let ca = chains[a].as_ref().expect("live");
                let cb = chains[b].as_ref().expect("live");
                let merged: Vec<usize> = ca.iter().chain(cb.iter()).copied().collect();
                let gain = chain_score(&merged, blocks, edges)
                    - chain_score(ca, blocks, edges)
                    - chain_score(cb, blocks, edges);
                if gain > 1e-9 && best.is_none_or(|(_, _, g)| gain > g) {
                    best = Some((a, b, gain));
                }
            }
        }
        match best {
            None => break,
            Some((a, b, _)) => {
                let cb = chains[b].take().expect("live");
                let ca = chains[a].as_mut().expect("live");
                for &blk in &cb {
                    chain_of[blk] = a;
                }
                ca.extend(cb);
            }
        }
    }

    // Concatenate: entry chain first, then by density (hotness per byte).
    let mut rest: Vec<Vec<usize>> = Vec::new();
    let mut first: Option<Vec<usize>> = None;
    for c in chains.into_iter().flatten() {
        if c[0] == 0 || c.contains(&0) {
            first = Some(c);
        } else {
            rest.push(c);
        }
    }
    rest.sort_by(|a, b| {
        let da = density(a, blocks);
        let db = density(b, blocks);
        db.partial_cmp(&da).unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut order = first.expect("entry chain exists");
    for c in rest {
        order.extend(c);
    }
    debug_assert_eq!(order.len(), n);
    order
}

fn density(chain: &[usize], blocks: &[BlockNode]) -> f64 {
    let w: u64 = chain.iter().map(|&b| blocks[b].weight).sum();
    let s: u64 = chain.iter().map(|&b| blocks[b].size as u64).sum();
    w as f64 / (s.max(1)) as f64
}

/// Near-linear fallback: chain blocks along their heaviest outgoing edges
/// (classic Pettis–Hansen-style bottom-up chaining), entry first.
fn greedy_fallthrough(blocks: &[BlockNode], edges: &[BlockEdge]) -> Vec<usize> {
    let n = blocks.len();
    let mut sorted: Vec<&BlockEdge> = edges.iter().filter(|e| e.weight > 0).collect();
    sorted.sort_by_key(|e| std::cmp::Reverse(e.weight));
    // next/prev links forming disjoint paths.
    let mut next = vec![usize::MAX; n];
    let mut prev = vec![usize::MAX; n];
    // Union-find to reject cycles.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for e in sorted {
        if e.src == e.dst || next[e.src] != usize::MAX || prev[e.dst] != usize::MAX {
            continue;
        }
        // The entry must stay a path head.
        if e.dst == 0 {
            continue;
        }
        let (rs, rd) = (find(&mut parent, e.src), find(&mut parent, e.dst));
        if rs == rd {
            continue;
        }
        parent[rs] = rd;
        next[e.src] = e.dst;
        prev[e.dst] = e.src;
    }
    // Emit: path containing entry first, then heads by weight.
    let mut order = Vec::with_capacity(n);
    let mut emitted = vec![false; n];
    let emit_path = |head: usize, order: &mut Vec<usize>, emitted: &mut Vec<bool>| {
        let mut cur = head;
        while cur != usize::MAX && !emitted[cur] {
            emitted[cur] = true;
            order.push(cur);
            cur = next[cur];
        }
    };
    emit_path(0, &mut order, &mut emitted);
    let mut heads: Vec<usize> = (0..n)
        .filter(|&b| !emitted[b] && prev[b] == usize::MAX)
        .collect();
    heads.sort_by_key(|&b| std::cmp::Reverse(blocks[b].weight));
    for h in heads {
        emit_path(h, &mut order, &mut emitted);
    }
    // Anything left (cycles fully emitted already by paths) — defensive.
    for (b, &done) in emitted.iter().enumerate() {
        if !done {
            order.push(b);
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_blocks(n: usize, size: u32) -> Vec<BlockNode> {
        (0..n).map(|_| BlockNode { size, weight: 1 }).collect()
    }

    #[test]
    fn single_block_is_trivial() {
        let order = exttsp_order(&uniform_blocks(1, 16), &[], &ExtTspParams::default());
        assert_eq!(order, vec![0]);
    }

    #[test]
    fn hot_successor_becomes_fallthrough() {
        // 0 branches to 1 (hot) and 2 (cold); the hot edge should be the
        // fallthrough: order 0,1,...
        let blocks = uniform_blocks(3, 32);
        let edges = vec![
            BlockEdge {
                src: 0,
                dst: 1,
                weight: 100,
            },
            BlockEdge {
                src: 0,
                dst: 2,
                weight: 1,
            },
        ];
        let order = exttsp_order(&blocks, &edges, &ExtTspParams::default());
        assert_eq!(order[0], 0);
        assert_eq!(order[1], 1);
    }

    #[test]
    fn entry_is_always_first() {
        // Even when the entry is cold and an edge points into it.
        let blocks = vec![
            BlockNode {
                size: 16,
                weight: 1,
            },
            BlockNode {
                size: 16,
                weight: 1000,
            },
            BlockNode {
                size: 16,
                weight: 1000,
            },
        ];
        let edges = vec![
            BlockEdge {
                src: 1,
                dst: 2,
                weight: 1000,
            },
            BlockEdge {
                src: 2,
                dst: 0,
                weight: 500,
            },
        ];
        let order = exttsp_order(&blocks, &edges, &ExtTspParams::default());
        assert_eq!(order[0], 0);
    }

    #[test]
    fn chain_follows_heavy_path() {
        // Diamond: 0 -> 1 (90) / 2 (10), both -> 3. Expect 0,1,3 contiguous.
        let blocks = uniform_blocks(4, 16);
        let edges = vec![
            BlockEdge {
                src: 0,
                dst: 1,
                weight: 90,
            },
            BlockEdge {
                src: 0,
                dst: 2,
                weight: 10,
            },
            BlockEdge {
                src: 1,
                dst: 3,
                weight: 90,
            },
            BlockEdge {
                src: 2,
                dst: 3,
                weight: 10,
            },
        ];
        let order = exttsp_order(&blocks, &edges, &ExtTspParams::default());
        let pos: Vec<usize> = {
            let mut p = vec![0; 4];
            for (i, &b) in order.iter().enumerate() {
                p[b] = i;
            }
            p
        };
        assert_eq!(order[0], 0);
        assert_eq!(pos[1], 1, "hot arm should follow entry");
        assert_eq!(pos[3], 2, "join should follow hot arm");
    }

    #[test]
    fn score_rewards_fallthrough_most() {
        let blocks = uniform_blocks(2, 16);
        let edges = vec![BlockEdge {
            src: 0,
            dst: 1,
            weight: 10,
        }];
        let p = ExtTspParams::default();
        let fall = exttsp_score(&blocks, &edges, &[0, 1], &p);
        let back = exttsp_score(&blocks, &edges, &[1, 0], &p);
        assert!(fall > back);
        assert_eq!(fall, 10.0);
    }

    #[test]
    fn greedy_never_loses_to_source_order_on_diamonds() {
        let blocks = uniform_blocks(6, 32);
        let edges = vec![
            BlockEdge {
                src: 0,
                dst: 2,
                weight: 70,
            },
            BlockEdge {
                src: 0,
                dst: 1,
                weight: 30,
            },
            BlockEdge {
                src: 1,
                dst: 3,
                weight: 30,
            },
            BlockEdge {
                src: 2,
                dst: 3,
                weight: 70,
            },
            BlockEdge {
                src: 3,
                dst: 5,
                weight: 95,
            },
            BlockEdge {
                src: 3,
                dst: 4,
                weight: 5,
            },
        ];
        let p = ExtTspParams::default();
        let order = exttsp_order(&blocks, &edges, &p);
        let source: Vec<usize> = (0..6).collect();
        assert!(
            exttsp_score(&blocks, &edges, &order, &p) >= exttsp_score(&blocks, &edges, &source, &p)
        );
    }

    #[test]
    fn fallback_is_used_for_huge_functions() {
        let n = 500;
        let blocks = uniform_blocks(n, 8);
        let edges: Vec<BlockEdge> = (0..n - 1)
            .map(|i| BlockEdge {
                src: i,
                dst: i + 1,
                weight: (n - i) as u64,
            })
            .collect();
        let p = ExtTspParams {
            max_exact_blocks: 100,
            ..Default::default()
        };
        let order = exttsp_order(&blocks, &edges, &p);
        assert_eq!(order.len(), n);
        assert_eq!(order[0], 0);
        // The chain structure should be preserved by the fallback.
        assert_eq!(order[1], 1);
        assert_eq!(order[n - 1], n - 1);
    }

    #[test]
    fn output_is_a_permutation() {
        let blocks = uniform_blocks(10, 16);
        let edges = vec![
            BlockEdge {
                src: 0,
                dst: 5,
                weight: 3,
            },
            BlockEdge {
                src: 5,
                dst: 9,
                weight: 7,
            },
            BlockEdge {
                src: 9,
                dst: 1,
                weight: 2,
            },
        ];
        let mut order = exttsp_order(&blocks, &edges, &ExtTspParams::default());
        order.sort_unstable();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }
}
