//! C3: call-chain clustering for function placement (Ottoni & Maher,
//! "Optimizing Function Placement for Large-Scale Data-Center
//! Applications", CGO 2017).
//!
//! C3 sorts functions in a linear order based on a weighted directed call
//! graph, where arc (f → g) carries the frequency with which f calls g
//! (paper §V-B). Functions are processed from hottest to coldest; each
//! function's cluster is appended after the cluster of its *hottest
//! caller*, unless the combined cluster would exceed the merge limit
//! (callers stop benefiting from locality past ~a page). Final clusters
//! are emitted in decreasing density.

use std::collections::HashMap;

/// A function node for placement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FuncNode {
    /// Code size in bytes.
    pub size: u32,
    /// Hotness (e.g. entry count or cycles).
    pub weight: u64,
}

/// A weighted call-graph arc: `caller` invokes `callee` `weight` times.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CallArc {
    /// Calling function index.
    pub caller: usize,
    /// Called function index.
    pub callee: usize,
    /// Invocation count.
    pub weight: u64,
}

/// Computes a function placement order with the C3 algorithm.
///
/// `merge_limit` bounds the byte size of a merged cluster (the paper uses
/// the hugepage-friendly threshold; 4096 is a good default for our scaled
/// code model).
///
/// # Panics
///
/// Panics if an arc references a function index out of range.
pub fn c3_order(funcs: &[FuncNode], arcs: &[CallArc], merge_limit: u32) -> Vec<usize> {
    c3_clusters(funcs, arcs, merge_limit)
        .into_iter()
        .flatten()
        .collect()
}

/// Like [`c3_order`], but returns the clusters before flattening, in
/// emission (decreasing-density) order. Every *merged* cluster respects
/// `merge_limit`; a singleton function bigger than the limit stays a
/// cluster of its own.
///
/// # Panics
///
/// Panics if an arc references a function index out of range.
pub fn c3_clusters(funcs: &[FuncNode], arcs: &[CallArc], merge_limit: u32) -> Vec<Vec<usize>> {
    let n = funcs.len();
    for a in arcs {
        assert!(
            a.caller < n && a.callee < n,
            "arc references unknown function"
        );
    }
    // Hottest caller per callee.
    let mut hottest_caller: HashMap<usize, (usize, u64)> = HashMap::new();
    for a in arcs {
        if a.caller == a.callee || a.weight == 0 {
            continue;
        }
        let e = hottest_caller
            .entry(a.callee)
            .or_insert((a.caller, a.weight));
        // Equal-weight arcs break the tie on the lower caller index, so the
        // result does not depend on the order arcs arrive in (the call graph
        // is assembled by parallel workers upstream).
        if a.weight > e.1 || (a.weight == e.1 && a.caller < e.0) {
            *e = (a.caller, a.weight);
        }
    }

    // Disjoint clusters as vectors; cluster_of maps function -> cluster id.
    let mut clusters: Vec<Option<Vec<usize>>> = (0..n).map(|f| Some(vec![f])).collect();
    let mut cluster_of: Vec<usize> = (0..n).collect();
    let mut sizes: Vec<u64> = funcs.iter().map(|f| f.size as u64).collect();

    // Process functions from hottest to coldest.
    let mut by_heat: Vec<usize> = (0..n).collect();
    by_heat.sort_by_key(|&f| std::cmp::Reverse(funcs[f].weight));
    for f in by_heat {
        let Some(&(caller, _)) = hottest_caller.get(&f) else {
            continue;
        };
        let cf = cluster_of[f];
        let cc = cluster_of[caller];
        if cf == cc {
            continue;
        }
        if sizes[cf] + sizes[cc] > merge_limit as u64 {
            continue;
        }
        // Append f's cluster after the caller's cluster.
        let tail = clusters[cf].take().expect("live cluster");
        for &m in &tail {
            cluster_of[m] = cc;
        }
        sizes[cc] += sizes[cf];
        clusters[cc].as_mut().expect("live cluster").extend(tail);
    }

    // Emit clusters by decreasing density (weight per byte).
    let mut live: Vec<Vec<usize>> = clusters.into_iter().flatten().collect();
    live.sort_by(|a, b| {
        let da = cluster_density(a, funcs);
        let db = cluster_density(b, funcs);
        db.partial_cmp(&da).unwrap_or(std::cmp::Ordering::Equal)
    });
    live
}

fn cluster_density(cluster: &[usize], funcs: &[FuncNode]) -> f64 {
    let w: u64 = cluster.iter().map(|&f| funcs[f].weight).sum();
    let s: u64 = cluster.iter().map(|&f| funcs[f].size as u64).sum();
    w as f64 / s.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(size: u32, weight: u64) -> FuncNode {
        FuncNode { size, weight }
    }

    #[test]
    fn callee_lands_after_its_hottest_caller() {
        // 0 calls 1 heavily; 2 calls 1 lightly.
        let funcs = vec![node(100, 50), node(100, 100), node(100, 10)];
        let arcs = vec![
            CallArc {
                caller: 0,
                callee: 1,
                weight: 90,
            },
            CallArc {
                caller: 2,
                callee: 1,
                weight: 5,
            },
        ];
        let order = c3_order(&funcs, &arcs, 4096);
        let pos: HashMap<usize, usize> = order.iter().enumerate().map(|(i, &f)| (f, i)).collect();
        assert_eq!(
            pos[&1],
            pos[&0] + 1,
            "callee should immediately follow hottest caller"
        );
    }

    #[test]
    fn merge_limit_prevents_giant_clusters() {
        let funcs = vec![node(3000, 10), node(3000, 9)];
        let arcs = vec![CallArc {
            caller: 0,
            callee: 1,
            weight: 100,
        }];
        let order = c3_order(&funcs, &arcs, 4096);
        // 3000 + 3000 > 4096: no merge; both emitted as singletons.
        assert_eq!(order.len(), 2);
        // Densities: 10/3000 vs 9/3000 -> 0 first anyway.
        assert_eq!(order[0], 0);
    }

    #[test]
    fn chains_of_calls_form_one_cluster() {
        // a -> b -> c, all hot: expect contiguous a, b, c.
        let funcs = vec![node(10, 100), node(10, 90), node(10, 80), node(10, 1)];
        let arcs = vec![
            CallArc {
                caller: 0,
                callee: 1,
                weight: 90,
            },
            CallArc {
                caller: 1,
                callee: 2,
                weight: 80,
            },
        ];
        let order = c3_order(&funcs, &arcs, 4096);
        let pos: HashMap<usize, usize> = order.iter().enumerate().map(|(i, &f)| (f, i)).collect();
        assert_eq!(pos[&1], pos[&0] + 1);
        assert_eq!(pos[&2], pos[&1] + 1);
        // Cold unrelated function is last.
        assert_eq!(order[3], 3);
    }

    #[test]
    fn density_orders_unrelated_clusters() {
        let funcs = vec![node(100, 1), node(10, 50)];
        let order = c3_order(&funcs, &[], 4096);
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn self_calls_and_zero_arcs_are_ignored() {
        let funcs = vec![node(10, 5), node(10, 4)];
        let arcs = vec![
            CallArc {
                caller: 0,
                callee: 0,
                weight: 100,
            },
            CallArc {
                caller: 0,
                callee: 1,
                weight: 0,
            },
        ];
        let order = c3_order(&funcs, &arcs, 4096);
        assert_eq!(order.len(), 2);
    }

    #[test]
    fn output_is_a_permutation() {
        let funcs: Vec<FuncNode> = (0..20).map(|i| node(10 + i, (20 - i) as u64)).collect();
        let arcs: Vec<CallArc> = (0..19)
            .map(|i| CallArc {
                caller: i as usize,
                callee: i as usize + 1,
                weight: i as u64 + 1,
            })
            .collect();
        let mut order = c3_order(&funcs, &arcs, 1 << 20);
        order.sort_unstable();
        assert_eq!(order, (0..20).collect::<Vec<_>>());
    }
}
