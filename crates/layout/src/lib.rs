//! Code- and data-layout algorithms used by the Jump-Start optimizations
//! (paper §V).
//!
//! * [`exttsp_order`] — Ext-TSP basic-block reordering (Newell & Pupyrev
//!   [18]), driven by block/branch weights; used with accurate Vasm-level
//!   counters from the Jump-Start package (§V-A).
//! * [`split_hot_cold`] — hot/cold code splitting, applied together with
//!   block layout (§V-A).
//! * [`c3_order`] — the C3 call-chain-clustering function sort (Ottoni &
//!   Maher [20]), driven by the inlining-aware call graph (§V-B).
//! * [`pagepack`] — BOLT-style global plan: hot parts of all functions
//!   packed into simulated 2 MB huge-page bins, cold parts exiled to a
//!   4 KiB-page region ([`PagePacker`], [`LayoutPlanOptions`]).
//! * [`pettis_hansen_order`] — the classic Pettis–Hansen function ordering,
//!   kept as an ablation baseline.
//! * [`reorder_props_by_hotness`] / [`reorder_props_by_affinity`] — object
//!   property reordering (§V-C; the affinity variant implements the paper's
//!   "future work" suggestion).
//!
//! All functions here are pure: they map weights to orders and know nothing
//! about the VM, so they are directly property-testable.

mod c3;
mod exttsp;
mod hotcold;
pub mod pagepack;
mod pettis;
mod plan_cache;
mod propreorder;

pub use c3::{c3_clusters, c3_order, CallArc, FuncNode};
#[doc(hidden)]
pub use exttsp::exttsp_order_reference;
pub use exttsp::{exttsp_order, exttsp_score, BlockEdge, BlockNode, ExtTspParams};
pub use hotcold::{split_hot_cold, HotColdSplit};
pub use pagepack::{
    pack_extents, FuncExtent, LayoutPlanOptions, PagePackPlan, PagePackStats, PagePacker,
    PlacedExtent, HUGE_PAGE_BYTES, SMALL_PAGE_BYTES,
};
pub use pettis::pettis_hansen_order;
pub use plan_cache::{CachedPlan, PlanCache, PlanKey};
pub use propreorder::{reorder_props_by_affinity, reorder_props_by_hotness, PropAccess};
