//! Pettis–Hansen function ordering (PLDI 1990), kept as the ablation
//! baseline that C3 (paper §V-B) improves on.
//!
//! PH treats the call graph as *undirected*: edge weights between cluster
//! pairs are summed, and the heaviest pair is merged until no edges remain.
//! Unlike C3 it loses call direction (callers before callees) and processes
//! edges rather than functions.

use std::collections::HashMap;

use crate::c3::{CallArc, FuncNode};

/// Computes a function order with the classic Pettis–Hansen clustering.
///
/// # Panics
///
/// Panics if an arc references a function index out of range.
pub fn pettis_hansen_order(funcs: &[FuncNode], arcs: &[CallArc], merge_limit: u32) -> Vec<usize> {
    let n = funcs.len();
    for a in arcs {
        assert!(
            a.caller < n && a.callee < n,
            "arc references unknown function"
        );
    }
    // Undirected pair weights.
    let mut pair_w: HashMap<(usize, usize), u64> = HashMap::new();
    for a in arcs {
        if a.caller == a.callee || a.weight == 0 {
            continue;
        }
        let key = (a.caller.min(a.callee), a.caller.max(a.callee));
        *pair_w.entry(key).or_insert(0) += a.weight;
    }
    let mut clusters: Vec<Option<Vec<usize>>> = (0..n).map(|f| Some(vec![f])).collect();
    let mut cluster_of: Vec<usize> = (0..n).collect();
    let mut sizes: Vec<u64> = funcs.iter().map(|f| f.size as u64).collect();

    let mut edges: Vec<((usize, usize), u64)> = pair_w.into_iter().collect();
    edges.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    for ((x, y), _) in edges {
        let (cx, cy) = (cluster_of[x], cluster_of[y]);
        if cx == cy || sizes[cx] + sizes[cy] > merge_limit as u64 {
            continue;
        }
        let tail = clusters[cy].take().expect("live");
        for &m in &tail {
            cluster_of[m] = cx;
        }
        sizes[cx] += sizes[cy];
        clusters[cx].as_mut().expect("live").extend(tail);
    }

    let mut live: Vec<Vec<usize>> = clusters.into_iter().flatten().collect();
    live.sort_by(|a, b| {
        let wa: u64 = a.iter().map(|&f| funcs[f].weight).sum();
        let wb: u64 = b.iter().map(|&f| funcs[f].weight).sum();
        wb.cmp(&wa)
    });
    live.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_heaviest_pairs_first() {
        let funcs = vec![
            FuncNode {
                size: 10,
                weight: 1,
            },
            FuncNode {
                size: 10,
                weight: 1,
            },
            FuncNode {
                size: 10,
                weight: 1,
            },
        ];
        let arcs = vec![
            CallArc {
                caller: 0,
                callee: 2,
                weight: 100,
            },
            CallArc {
                caller: 0,
                callee: 1,
                weight: 1,
            },
        ];
        let order = pettis_hansen_order(&funcs, &arcs, 4096);
        let pos: HashMap<usize, usize> = order.iter().enumerate().map(|(i, &f)| (f, i)).collect();
        assert_eq!(pos[&2].abs_diff(pos[&0]), 1, "0 and 2 should be adjacent");
    }

    #[test]
    fn direction_is_ignored() {
        // Bidirectional weights add up.
        let funcs = vec![
            FuncNode {
                size: 10,
                weight: 1
            };
            2
        ];
        let arcs = vec![
            CallArc {
                caller: 0,
                callee: 1,
                weight: 30,
            },
            CallArc {
                caller: 1,
                callee: 0,
                weight: 40,
            },
        ];
        let order = pettis_hansen_order(&funcs, &arcs, 4096);
        assert_eq!(order.len(), 2);
    }

    #[test]
    fn output_is_a_permutation() {
        let funcs: Vec<FuncNode> = (0..15)
            .map(|i| FuncNode {
                size: 8,
                weight: i as u64,
            })
            .collect();
        let arcs: Vec<CallArc> = (0..14)
            .map(|i| CallArc {
                caller: i,
                callee: (i + 3) % 15,
                weight: (i + 1) as u64,
            })
            .collect();
        let mut order = pettis_hansen_order(&funcs, &arcs, 1 << 20);
        order.sort_unstable();
        assert_eq!(order, (0..15).collect::<Vec<_>>());
    }
}
