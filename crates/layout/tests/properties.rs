//! Property-based tests for the layout algorithms.

use layout::{
    c3_clusters, c3_order, exttsp_order, exttsp_score, pack_extents, pettis_hansen_order,
    reorder_props_by_hotness, split_hot_cold, BlockEdge, BlockNode, CallArc, ExtTspParams,
    FuncExtent, FuncNode, LayoutPlanOptions, PropAccess, HUGE_PAGE_BYTES,
};
use proptest::prelude::*;

fn arb_blocks(max_n: usize) -> impl Strategy<Value = Vec<BlockNode>> {
    prop::collection::vec(
        (1u32..64, 0u64..1000).prop_map(|(size, weight)| BlockNode { size, weight }),
        1..max_n,
    )
}

fn arb_cfg(max_n: usize) -> impl Strategy<Value = (Vec<BlockNode>, Vec<BlockEdge>)> {
    arb_blocks(max_n).prop_flat_map(|blocks| {
        let n = blocks.len();
        let edges = prop::collection::vec(
            (0..n, 0..n, 0u64..500).prop_map(|(src, dst, weight)| BlockEdge { src, dst, weight }),
            0..(2 * n).max(1),
        );
        (Just(blocks), edges)
    })
}

fn arb_callgraph(max_n: usize) -> impl Strategy<Value = (Vec<FuncNode>, Vec<CallArc>)> {
    // Sizes up to ~1.5 MiB so clusters brush against the 2 MiB merge limit;
    // small weight range so equal-weight arcs (the tie-break case) are common.
    prop::collection::vec((1u32..1_500_000, 0u64..50), 1..max_n).prop_flat_map(|nodes| {
        let funcs: Vec<FuncNode> = nodes
            .iter()
            .map(|&(size, weight)| FuncNode { size, weight })
            .collect();
        let n = funcs.len();
        let arcs = prop::collection::vec(
            (0..n, 0..n, 0u64..20).prop_map(|(caller, callee, weight)| CallArc {
                caller,
                callee,
                weight,
            }),
            0..(3 * n),
        );
        (Just(funcs), arcs)
    })
}

proptest! {
    #[test]
    fn exttsp_output_is_permutation_with_entry_first((blocks, edges) in arb_cfg(24)) {
        let order = exttsp_order(&blocks, &edges, &ExtTspParams::default());
        prop_assert_eq!(order[0], 0);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..blocks.len()).collect::<Vec<_>>());
    }

    #[test]
    fn exttsp_score_nonnegative_and_bounded((blocks, edges) in arb_cfg(16)) {
        let order = exttsp_order(&blocks, &edges, &ExtTspParams::default());
        let s = exttsp_score(&blocks, &edges, &order, &ExtTspParams::default());
        let max: f64 = edges.iter().map(|e| e.weight as f64).sum();
        prop_assert!(s >= 0.0);
        prop_assert!(s <= max + 1e-6);
    }

    #[test]
    fn exttsp_beats_or_ties_reverse_order((blocks, edges) in arb_cfg(12)) {
        // The optimized order should score at least as well as the
        // pessimal reverse-of-source order (a weak but universal bound;
        // strict comparison against source order can tie).
        let p = ExtTspParams::default();
        let order = exttsp_order(&blocks, &edges, &p);
        let mut rev: Vec<usize> = (0..blocks.len()).collect();
        rev[1..].reverse();
        let opt = exttsp_score(&blocks, &edges, &order, &p);
        // Compare against the better of source and reversed-source to keep
        // the bound meaningful without being flaky.
        let src: Vec<usize> = (0..blocks.len()).collect();
        let base = exttsp_score(&blocks, &edges, &src, &p)
            .min(exttsp_score(&blocks, &edges, &rev, &p));
        prop_assert!(opt + 1e-6 >= base);
    }

    #[test]
    fn exttsp_matches_reference_bit_for_bit((blocks, edges) in arb_cfg(28)) {
        // The incremental merge must reproduce the reference greedy loop
        // exactly — same merges, same tie-breaks, same final order — since
        // consumer boots rely on the layout being byte-identical whether
        // or not the fast path / plan cache is used.
        let p = ExtTspParams::default();
        let fast = exttsp_order(&blocks, &edges, &p);
        let slow = layout::exttsp_order_reference(&blocks, &edges, &p);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn exttsp_matches_reference_on_heavy_weights((blocks, edges) in arb_cfg(20)) {
        // Large weights stress the floating-point path: near-zero gains
        // from sum reassociation must round identically in both loops.
        let p = ExtTspParams::default();
        let heavy: Vec<BlockEdge> = edges
            .iter()
            .map(|e| BlockEdge { src: e.src, dst: e.dst, weight: e.weight * 1_048_573 })
            .collect();
        let fast = exttsp_order(&blocks, &heavy, &p);
        let slow = layout::exttsp_order_reference(&blocks, &heavy, &p);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn hot_cold_partitions_exactly(weights in prop::collection::vec(0u64..100, 1..40)) {
        let order: Vec<usize> = (0..weights.len()).collect();
        let s = split_hot_cold(&order, &weights, 0, 0.0);
        let mut all = s.hot.clone();
        all.extend(&s.cold);
        all.sort_unstable();
        prop_assert_eq!(all, order);
        for &c in &s.cold {
            prop_assert_eq!(weights[c], 0);
        }
    }

    #[test]
    fn c3_output_is_permutation(
        sizes in prop::collection::vec(1u32..200, 1..30),
        seed in 0u64..1000,
    ) {
        let funcs: Vec<FuncNode> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| FuncNode { size: s, weight: (i as u64 * 7 + seed) % 100 })
            .collect();
        let n = funcs.len();
        let arcs: Vec<CallArc> = (0..n)
            .map(|i| CallArc {
                caller: i,
                callee: (i * 3 + seed as usize) % n,
                weight: (i as u64 + seed) % 50,
            })
            .collect();
        let mut order = c3_order(&funcs, &arcs, 4096);
        order.sort_unstable();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn c3_merged_clusters_never_exceed_merge_limit_at_huge_page_scale(
        (funcs, arcs) in arb_callgraph(40),
    ) {
        // Huge-page packing relies on C3 clusters fitting in one 2 MiB bin:
        // any cluster C3 actually *merged* must stay within the limit. A
        // single function bigger than the limit is allowed to stand alone.
        let limit = HUGE_PAGE_BYTES as u32;
        let clusters = c3_clusters(&funcs, &arcs, limit);
        let mut all: Vec<usize> = Vec::new();
        for c in &clusters {
            let bytes: u64 = c.iter().map(|&f| funcs[f].size as u64).sum();
            if c.len() > 1 {
                prop_assert!(
                    bytes <= limit as u64,
                    "merged cluster of {} funcs spans {} bytes > merge limit {}",
                    c.len(), bytes, limit
                );
            }
            all.extend(c);
        }
        all.sort_unstable();
        prop_assert_eq!(all, (0..funcs.len()).collect::<Vec<_>>());
    }

    #[test]
    fn c3_order_is_deterministic_across_arc_permutations(
        (funcs, arcs) in arb_callgraph(24),
        seed in 0u64..1_000_000,
    ) {
        // The call graph is assembled by parallel workers, so arc order is
        // an accident of scheduling; the emitted layout must not be.
        // Fisher–Yates with a splitmix64 stream derived from `seed`.
        let mut shuffled = arcs.clone();
        let mut s = seed;
        for i in (1..shuffled.len()).rev() {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            shuffled.swap(i, (z % (i as u64 + 1)) as usize);
        }
        let a = c3_order(&funcs, &arcs, HUGE_PAGE_BYTES as u32);
        let b = c3_order(&funcs, &shuffled, HUGE_PAGE_BYTES as u32);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn pagepack_never_splits_small_parts_across_bins(
        extents in prop::collection::vec(
            (0u64..5_000_000, 0u64..100_000)
                .prop_map(|(h, c)| FuncExtent { hot_bytes: h, cold_bytes: c }),
            1..60,
        ),
    ) {
        let plan = pack_extents(&extents, LayoutPlanOptions::default());
        for (e, p) in extents.iter().zip(&plan.placements) {
            if e.hot_bytes > 0 && e.hot_bytes <= HUGE_PAGE_BYTES {
                let first = p.hot_offset / HUGE_PAGE_BYTES;
                let last = (p.hot_offset + e.hot_bytes - 1) / HUGE_PAGE_BYTES;
                prop_assert_eq!(first, last, "hot part straddles a huge-page boundary");
            }
        }
        // Disabled packing must be plain bump allocation: offsets are the
        // running sums of the input sizes, no padding anywhere.
        let bump = pack_extents(&extents, LayoutPlanOptions::disabled());
        let mut cursor = 0u64;
        for (e, p) in extents.iter().zip(&bump.placements) {
            prop_assert_eq!(p.hot_offset, cursor);
            cursor += e.hot_bytes;
        }
        prop_assert_eq!(bump.stats.pad_bytes, 0);
    }

    #[test]
    fn pettis_hansen_output_is_permutation(
        sizes in prop::collection::vec(1u32..200, 1..30),
    ) {
        let funcs: Vec<FuncNode> =
            sizes.iter().map(|&s| FuncNode { size: s, weight: s as u64 }).collect();
        let n = funcs.len();
        let arcs: Vec<CallArc> = (0..n)
            .map(|i| CallArc { caller: i, callee: (i + 1) % n, weight: i as u64 })
            .collect();
        let mut order = pettis_hansen_order(&funcs, &arcs, 4096);
        order.sort_unstable();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn hotness_reorder_is_permutation_and_sorted(
        counts in prop::collection::vec(0u64..1_000_000, 0..50),
    ) {
        let props: Vec<PropAccess<usize>> = counts
            .iter()
            .enumerate()
            .map(|(i, &c)| PropAccess { prop: i, count: c })
            .collect();
        let order = reorder_props_by_hotness(&props);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..counts.len()).collect::<Vec<_>>());
        for w in order.windows(2) {
            prop_assert!(counts[w[0]] >= counts[w[1]]);
        }
    }
}
