//! Property-based tests for the layout algorithms.

use layout::{
    c3_order, exttsp_order, exttsp_score, pettis_hansen_order, reorder_props_by_hotness,
    split_hot_cold, BlockEdge, BlockNode, CallArc, ExtTspParams, FuncNode, PropAccess,
};
use proptest::prelude::*;

fn arb_blocks(max_n: usize) -> impl Strategy<Value = Vec<BlockNode>> {
    prop::collection::vec(
        (1u32..64, 0u64..1000).prop_map(|(size, weight)| BlockNode { size, weight }),
        1..max_n,
    )
}

fn arb_cfg(max_n: usize) -> impl Strategy<Value = (Vec<BlockNode>, Vec<BlockEdge>)> {
    arb_blocks(max_n).prop_flat_map(|blocks| {
        let n = blocks.len();
        let edges = prop::collection::vec(
            (0..n, 0..n, 0u64..500).prop_map(|(src, dst, weight)| BlockEdge { src, dst, weight }),
            0..(2 * n).max(1),
        );
        (Just(blocks), edges)
    })
}

proptest! {
    #[test]
    fn exttsp_output_is_permutation_with_entry_first((blocks, edges) in arb_cfg(24)) {
        let order = exttsp_order(&blocks, &edges, &ExtTspParams::default());
        prop_assert_eq!(order[0], 0);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..blocks.len()).collect::<Vec<_>>());
    }

    #[test]
    fn exttsp_score_nonnegative_and_bounded((blocks, edges) in arb_cfg(16)) {
        let order = exttsp_order(&blocks, &edges, &ExtTspParams::default());
        let s = exttsp_score(&blocks, &edges, &order, &ExtTspParams::default());
        let max: f64 = edges.iter().map(|e| e.weight as f64).sum();
        prop_assert!(s >= 0.0);
        prop_assert!(s <= max + 1e-6);
    }

    #[test]
    fn exttsp_beats_or_ties_reverse_order((blocks, edges) in arb_cfg(12)) {
        // The optimized order should score at least as well as the
        // pessimal reverse-of-source order (a weak but universal bound;
        // strict comparison against source order can tie).
        let p = ExtTspParams::default();
        let order = exttsp_order(&blocks, &edges, &p);
        let mut rev: Vec<usize> = (0..blocks.len()).collect();
        rev[1..].reverse();
        let opt = exttsp_score(&blocks, &edges, &order, &p);
        // Compare against the better of source and reversed-source to keep
        // the bound meaningful without being flaky.
        let src: Vec<usize> = (0..blocks.len()).collect();
        let base = exttsp_score(&blocks, &edges, &src, &p)
            .min(exttsp_score(&blocks, &edges, &rev, &p));
        prop_assert!(opt + 1e-6 >= base);
    }

    #[test]
    fn exttsp_matches_reference_bit_for_bit((blocks, edges) in arb_cfg(28)) {
        // The incremental merge must reproduce the reference greedy loop
        // exactly — same merges, same tie-breaks, same final order — since
        // consumer boots rely on the layout being byte-identical whether
        // or not the fast path / plan cache is used.
        let p = ExtTspParams::default();
        let fast = exttsp_order(&blocks, &edges, &p);
        let slow = layout::exttsp_order_reference(&blocks, &edges, &p);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn exttsp_matches_reference_on_heavy_weights((blocks, edges) in arb_cfg(20)) {
        // Large weights stress the floating-point path: near-zero gains
        // from sum reassociation must round identically in both loops.
        let p = ExtTspParams::default();
        let heavy: Vec<BlockEdge> = edges
            .iter()
            .map(|e| BlockEdge { src: e.src, dst: e.dst, weight: e.weight * 1_048_573 })
            .collect();
        let fast = exttsp_order(&blocks, &heavy, &p);
        let slow = layout::exttsp_order_reference(&blocks, &heavy, &p);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn hot_cold_partitions_exactly(weights in prop::collection::vec(0u64..100, 1..40)) {
        let order: Vec<usize> = (0..weights.len()).collect();
        let s = split_hot_cold(&order, &weights, 0, 0.0);
        let mut all = s.hot.clone();
        all.extend(&s.cold);
        all.sort_unstable();
        prop_assert_eq!(all, order);
        for &c in &s.cold {
            prop_assert_eq!(weights[c], 0);
        }
    }

    #[test]
    fn c3_output_is_permutation(
        sizes in prop::collection::vec(1u32..200, 1..30),
        seed in 0u64..1000,
    ) {
        let funcs: Vec<FuncNode> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| FuncNode { size: s, weight: (i as u64 * 7 + seed) % 100 })
            .collect();
        let n = funcs.len();
        let arcs: Vec<CallArc> = (0..n)
            .map(|i| CallArc {
                caller: i,
                callee: (i * 3 + seed as usize) % n,
                weight: (i as u64 + seed) % 50,
            })
            .collect();
        let mut order = c3_order(&funcs, &arcs, 4096);
        order.sort_unstable();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn pettis_hansen_output_is_permutation(
        sizes in prop::collection::vec(1u32..200, 1..30),
    ) {
        let funcs: Vec<FuncNode> =
            sizes.iter().map(|&s| FuncNode { size: s, weight: s as u64 }).collect();
        let n = funcs.len();
        let arcs: Vec<CallArc> = (0..n)
            .map(|i| CallArc { caller: i, callee: (i + 1) % n, weight: i as u64 })
            .collect();
        let mut order = pettis_hansen_order(&funcs, &arcs, 4096);
        order.sort_unstable();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn hotness_reorder_is_permutation_and_sorted(
        counts in prop::collection::vec(0u64..1_000_000, 0..50),
    ) {
        let props: Vec<PropAccess<usize>> = counts
            .iter()
            .enumerate()
            .map(|(i, &c)| PropAccess { prop: i, count: c })
            .collect();
        let order = reorder_props_by_hotness(&props);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..counts.len()).collect::<Vec<_>>());
        for w in order.windows(2) {
            prop_assert!(counts[w[0]] >= counts[w[1]]);
        }
    }
}
