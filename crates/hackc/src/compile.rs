//! AST → bytecode compilation.
//!
//! Mirrors HHVM's offline compilation step: the whole program is compiled
//! and optimized before deployment, so function calls are resolved to dense
//! [`FuncId`]s here, while method calls stay dynamic (dispatched per
//! receiver class at runtime, which is what the JIT's call-target profiles
//! then specialize).

use std::collections::{HashMap, HashSet};

use bytecode::{
    BinOp, Builtin, FuncBuilder, FuncId, Instr, LitArray, Literal, Repo, RepoBuilder, UnOp,
    Visibility,
};

use crate::ast::*;
use crate::error::{CompileError, Pos};
use crate::parser::parse;

/// Compiles a single source file into a repo.
///
/// # Errors
///
/// Returns the first lexical, syntactic or semantic error.
pub fn compile_unit(name: &str, src: &str) -> Result<Repo, CompileError> {
    compile_program(&[(name, src)])
}

/// Compiles a multi-file program into a repo (the offline deployment build).
///
/// # Errors
///
/// Returns the first lexical, syntactic or semantic error.
pub fn compile_program(files: &[(&str, &str)]) -> Result<Repo, CompileError> {
    let mut parsed = Vec::with_capacity(files.len());
    for (name, src) in files {
        parsed.push((name.to_owned(), parse(name, src)?));
    }

    let mut repo = RepoBuilder::new();

    // Pass 1a: declare units and collect classes/functions.
    struct PendingClass<'a> {
        file: &'a str,
        unit: bytecode::UnitId,
        decl: &'a ClassDecl,
    }
    struct PendingFunc<'a> {
        file: &'a str,
        unit: bytecode::UnitId,
        decl: &'a FuncDecl,
        class: Option<String>,
    }
    let mut classes: Vec<PendingClass> = Vec::new();
    let mut funcs: Vec<PendingFunc> = Vec::new();
    for (name, prog) in &parsed {
        let unit = repo.declare_unit(name);
        for item in &prog.items {
            match item {
                Item::Func(f) => funcs.push(PendingFunc {
                    file: name,
                    unit,
                    decl: f,
                    class: None,
                }),
                Item::Class(c) => {
                    classes.push(PendingClass {
                        file: name,
                        unit,
                        decl: c,
                    });
                    for m in &c.methods {
                        funcs.push(PendingFunc {
                            file: name,
                            unit,
                            decl: m,
                            class: Some(c.name.clone()),
                        });
                    }
                }
            }
        }
    }

    // Pass 1b: declare classes topologically (parents first).
    let by_name: HashMap<&str, usize> = classes
        .iter()
        .enumerate()
        .map(|(i, c)| (c.decl.name.as_str(), i))
        .collect();
    if by_name.len() != classes.len() {
        // Find the duplicate for a good message.
        let mut seen = HashSet::new();
        for c in &classes {
            if !seen.insert(c.decl.name.as_str()) {
                return Err(CompileError::new(
                    c.file,
                    c.decl.pos,
                    format!("duplicate class `{}`", c.decl.name),
                ));
            }
        }
    }
    let mut class_ids: HashMap<String, bytecode::ClassId> = HashMap::new();
    let mut state = vec![0u8; classes.len()]; // 0 unvisited, 1 visiting, 2 done
    fn declare_class(
        i: usize,
        classes: &[PendingClass],
        by_name: &HashMap<&str, usize>,
        state: &mut [u8],
        class_ids: &mut HashMap<String, bytecode::ClassId>,
        repo: &mut RepoBuilder,
    ) -> Result<(), CompileError> {
        if state[i] == 2 {
            return Ok(());
        }
        if state[i] == 1 {
            return Err(CompileError::new(
                classes[i].file,
                classes[i].decl.pos,
                format!("inheritance cycle through `{}`", classes[i].decl.name),
            ));
        }
        state[i] = 1;
        let parent_id = match &classes[i].decl.parent {
            Some(p) => {
                let pi = *by_name.get(p.as_str()).ok_or_else(|| {
                    CompileError::new(
                        classes[i].file,
                        classes[i].decl.pos,
                        format!("unknown parent class `{p}`"),
                    )
                })?;
                declare_class(pi, classes, by_name, state, class_ids, repo)?;
                Some(class_ids[p])
            }
            None => None,
        };
        let mut props = Vec::new();
        for p in &classes[i].decl.props {
            let default = match &p.default {
                None => Literal::Null,
                Some(e) => literal_of(classes[i].file, p.pos, e, repo)?,
            };
            let vis = if p.public {
                Visibility::Public
            } else {
                Visibility::Private
            };
            props.push((p.name.clone(), default, vis));
        }
        let id = repo.declare_class(classes[i].unit, &classes[i].decl.name, parent_id, props);
        class_ids.insert(classes[i].decl.name.clone(), id);
        state[i] = 2;
        Ok(())
    }
    for i in 0..classes.len() {
        declare_class(i, &classes, &by_name, &mut state, &mut class_ids, &mut repo)?;
    }

    // Pass 1c: pre-assign function ids in definition order.
    let mut func_ids: HashMap<String, FuncId> = HashMap::new();
    let mut arities: Vec<u16> = Vec::new();
    for (i, f) in funcs.iter().enumerate() {
        let full = match &f.class {
            Some(c) => format!("{c}::{}", f.decl.name),
            None => f.decl.name.clone(),
        };
        if func_ids
            .insert(full.clone(), FuncId::new(i as u32))
            .is_some()
        {
            return Err(CompileError::new(
                f.file,
                f.decl.pos,
                format!("duplicate function `{full}`"),
            ));
        }
        arities.push(f.decl.params.len() as u16);
    }

    // Map classes to their (transitively) resolved constructor, if any.
    let mut ctor_of: HashMap<String, (String, u16)> = HashMap::new();
    for c in &classes {
        let mut cur = Some(&c.decl.name);
        while let Some(name) = cur {
            let ci = by_name[name.as_str()];
            if let Some(m) = classes[ci]
                .decl
                .methods
                .iter()
                .find(|m| m.name == "__construct")
            {
                ctor_of.insert(c.decl.name.clone(), (name.clone(), m.params.len() as u16));
                break;
            }
            cur = classes[ci].decl.parent.as_ref();
        }
    }

    // Pass 2: compile bodies in the pre-assigned order.
    let env = Env {
        func_ids: &func_ids,
        arities: &arities,
        class_ids: &class_ids,
        ctor_of: &ctor_of,
    };
    for (i, f) in funcs.iter().enumerate() {
        let full = match &f.class {
            Some(c) => format!("{c}::{}", f.decl.name),
            None => f.decl.name.clone(),
        };
        let fb = compile_func(f.file, &full, f.decl, f.class.is_some(), &env, &mut repo)?;
        let id = match &f.class {
            Some(c) => repo.define_method(f.unit, class_ids[c.as_str()], fb),
            None => repo.define_func(f.unit, fb),
        };
        debug_assert_eq!(id, FuncId::new(i as u32), "id pre-assignment must match");
    }

    repo.try_finish()
        .map_err(|e| CompileError::new(files[0].0, Pos::default(), format!("repo error: {e}")))
}

struct Env<'a> {
    func_ids: &'a HashMap<String, FuncId>,
    arities: &'a [u16],
    class_ids: &'a HashMap<String, bytecode::ClassId>,
    ctor_of: &'a HashMap<String, (String, u16)>,
}

fn literal_of(
    file: &str,
    pos: Pos,
    e: &Expr,
    repo: &mut RepoBuilder,
) -> Result<Literal, CompileError> {
    Ok(match e {
        Expr::Null => Literal::Null,
        Expr::Bool(b) => Literal::Bool(*b),
        Expr::Int(i) => Literal::Int(*i),
        Expr::Float(f) => Literal::Float(*f),
        Expr::Str(s) => Literal::Str(repo.intern(s)),
        Expr::Unary(UnaryOp::Neg, inner) => match literal_of(file, pos, inner, repo)? {
            Literal::Int(i) => Literal::Int(-i),
            Literal::Float(f) => Literal::Float(-f),
            _ => {
                return Err(CompileError::new(
                    file,
                    pos,
                    "negation of non-numeric default",
                ))
            }
        },
        Expr::VecLit(items) => {
            let lits = items
                .iter()
                .map(|i| literal_of(file, pos, i, repo))
                .collect::<Result<Vec<_>, _>>()?;
            Literal::Arr(repo.add_lit_array(LitArray::Vec(lits)))
        }
        Expr::DictLit(items) => {
            let mut pairs = Vec::with_capacity(items.len());
            for (k, v) in items {
                let key = match k {
                    Expr::Str(s) => repo.intern(s),
                    _ => {
                        return Err(CompileError::new(
                            file,
                            pos,
                            "static dict defaults need string keys",
                        ))
                    }
                };
                pairs.push((key, literal_of(file, pos, v, repo)?));
            }
            Literal::Arr(repo.add_lit_array(LitArray::Dict(pairs)))
        }
        _ => {
            return Err(CompileError::new(
                file,
                pos,
                "property defaults must be literals",
            ))
        }
    })
}

struct FnCtx<'a> {
    file: &'a str,
    is_method: bool,
    env: &'a Env<'a>,
    locals: HashMap<String, u16>,
    fb: FuncBuilder,
    // (continue target, break target) per enclosing loop.
    loops: Vec<(bytecode::Label, bytecode::Label)>,
}

fn compile_func(
    file: &str,
    full_name: &str,
    decl: &FuncDecl,
    is_method: bool,
    env: &Env<'_>,
    repo: &mut RepoBuilder,
) -> Result<FuncBuilder, CompileError> {
    let mut fb = FuncBuilder::new(full_name, decl.params.len() as u16);
    let mut locals = HashMap::new();
    for (i, p) in decl.params.iter().enumerate() {
        if locals.insert(p.clone(), i as u16).is_some() {
            return Err(CompileError::new(
                file,
                decl.pos,
                format!("duplicate parameter `${p}`"),
            ));
        }
    }
    // Pre-scan: every assigned variable gets a slot so reads in earlier
    // statements (e.g. loop-carried) resolve.
    let mut assigned = Vec::new();
    collect_assigned(&decl.body, &mut assigned);
    for v in assigned {
        locals.entry(v).or_insert_with(|| fb.new_local());
    }
    let mut ctx = FnCtx {
        file,
        is_method,
        env,
        locals,
        fb,
        loops: Vec::new(),
    };
    compile_block(&mut ctx, &decl.body, repo)?;
    // Implicit `return null;`.
    ctx.fb.emit(Instr::Null);
    ctx.fb.emit(Instr::Ret);
    Ok(ctx.fb)
}

fn collect_assigned(body: &[Stmt], out: &mut Vec<String>) {
    for s in body {
        match s {
            Stmt::Assign { var, .. } => out.push(var.clone()),
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                collect_assigned(then_body, out);
                collect_assigned(else_body, out);
            }
            Stmt::While { body, .. } => collect_assigned(body, out),
            Stmt::For {
                init, step, body, ..
            } => {
                if let Some(i) = init {
                    collect_assigned(std::slice::from_ref(i), out);
                }
                if let Some(st) = step {
                    collect_assigned(std::slice::from_ref(st), out);
                }
                collect_assigned(body, out);
            }
            Stmt::Foreach {
                key, value, body, ..
            } => {
                if let Some(k) = key {
                    out.push(k.clone());
                }
                out.push(value.clone());
                collect_assigned(body, out);
            }
            _ => {}
        }
    }
}

fn compile_block(
    ctx: &mut FnCtx<'_>,
    body: &[Stmt],
    repo: &mut RepoBuilder,
) -> Result<(), CompileError> {
    for s in body {
        compile_stmt(ctx, s, repo)?;
    }
    Ok(())
}

fn compile_stmt(
    ctx: &mut FnCtx<'_>,
    stmt: &Stmt,
    repo: &mut RepoBuilder,
) -> Result<(), CompileError> {
    match stmt {
        Stmt::Expr(e) => {
            compile_expr(ctx, e, repo)?;
            ctx.fb.emit(Instr::Pop);
        }
        Stmt::Assign { var, value } => {
            compile_expr(ctx, value, repo)?;
            let slot = ctx.locals[var.as_str()];
            ctx.fb.emit(Instr::SetL(slot));
        }
        Stmt::PropAssign { recv, prop, value } => {
            compile_expr(ctx, recv, repo)?;
            compile_expr(ctx, value, repo)?;
            let name = repo.intern(prop);
            ctx.fb.emit(Instr::SetProp(name));
        }
        Stmt::IndexAssign { recv, index, value } => {
            compile_expr(ctx, recv, repo)?;
            compile_expr(ctx, index, repo)?;
            compile_expr(ctx, value, repo)?;
            ctx.fb.emit(Instr::SetIdx);
            ctx.fb.emit(Instr::Pop);
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            let else_l = ctx.fb.new_label();
            compile_expr(ctx, cond, repo)?;
            ctx.fb.emit_jmp_z(else_l);
            compile_block(ctx, then_body, repo)?;
            if else_body.is_empty() {
                ctx.fb.bind(else_l);
            } else {
                let end = ctx.fb.new_label();
                ctx.fb.emit_jmp(end);
                ctx.fb.bind(else_l);
                compile_block(ctx, else_body, repo)?;
                ctx.fb.bind(end);
            }
        }
        Stmt::While { cond, body } => {
            let top = ctx.fb.new_label();
            let out = ctx.fb.new_label();
            ctx.fb.bind(top);
            compile_expr(ctx, cond, repo)?;
            ctx.fb.emit_jmp_z(out);
            ctx.loops.push((top, out));
            compile_block(ctx, body, repo)?;
            ctx.loops.pop();
            ctx.fb.emit_jmp(top);
            ctx.fb.bind(out);
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(i) = init {
                compile_stmt(ctx, i, repo)?;
            }
            let top = ctx.fb.new_label();
            let cont = ctx.fb.new_label();
            let out = ctx.fb.new_label();
            ctx.fb.bind(top);
            if let Some(c) = cond {
                compile_expr(ctx, c, repo)?;
                ctx.fb.emit_jmp_z(out);
            }
            ctx.loops.push((cont, out));
            compile_block(ctx, body, repo)?;
            ctx.loops.pop();
            ctx.fb.bind(cont);
            if let Some(s) = step {
                compile_stmt(ctx, s, repo)?;
            }
            ctx.fb.emit_jmp(top);
            ctx.fb.bind(out);
        }
        Stmt::Foreach {
            iter,
            key,
            value,
            body,
        } => {
            // Lowered to an index loop over keys():
            //   __c = iter; __k = keys(__c); __n = count(__k); __i = 0;
            //   while (__i < __n) {
            //     key = __k[__i]; value = __c[key]; body; __i++;
            //   }
            let c = ctx.fb.new_local();
            let ks = ctx.fb.new_local();
            let n = ctx.fb.new_local();
            let i = ctx.fb.new_local();
            compile_expr(ctx, iter, repo)?;
            ctx.fb.emit(Instr::SetL(c));
            ctx.fb.emit(Instr::GetL(c));
            ctx.fb.emit(Instr::CallBuiltin {
                builtin: Builtin::Keys,
                argc: 1,
            });
            ctx.fb.emit(Instr::SetL(ks));
            ctx.fb.emit(Instr::GetL(ks));
            ctx.fb.emit(Instr::CallBuiltin {
                builtin: Builtin::Count,
                argc: 1,
            });
            ctx.fb.emit(Instr::SetL(n));
            ctx.fb.emit(Instr::Int(0));
            ctx.fb.emit(Instr::SetL(i));
            let top = ctx.fb.new_label();
            let cont = ctx.fb.new_label();
            let out = ctx.fb.new_label();
            ctx.fb.bind(top);
            ctx.fb.emit(Instr::GetL(i));
            ctx.fb.emit(Instr::GetL(n));
            ctx.fb.emit(Instr::Bin(BinOp::Lt));
            ctx.fb.emit_jmp_z(out);
            // key = __k[__i]
            let key_slot = match key {
                Some(k) => ctx.locals[k.as_str()],
                None => ctx.fb.new_local(),
            };
            ctx.fb.emit(Instr::GetL(ks));
            ctx.fb.emit(Instr::GetL(i));
            ctx.fb.emit(Instr::Idx);
            ctx.fb.emit(Instr::SetL(key_slot));
            // value = __c[key]
            let val_slot = ctx.locals[value.as_str()];
            ctx.fb.emit(Instr::GetL(c));
            ctx.fb.emit(Instr::GetL(key_slot));
            ctx.fb.emit(Instr::Idx);
            ctx.fb.emit(Instr::SetL(val_slot));
            ctx.loops.push((cont, out));
            compile_block(ctx, body, repo)?;
            ctx.loops.pop();
            ctx.fb.bind(cont);
            ctx.fb.emit(Instr::IncL(i, 1));
            ctx.fb.emit(Instr::Pop);
            ctx.fb.emit_jmp(top);
            ctx.fb.bind(out);
        }
        Stmt::Return(e) => {
            match e {
                Some(e) => compile_expr(ctx, e, repo)?,
                None => ctx.fb.emit(Instr::Null),
            }
            ctx.fb.emit(Instr::Ret);
        }
        Stmt::Break(pos) => {
            let (_, brk) = *ctx
                .loops
                .last()
                .ok_or_else(|| CompileError::new(ctx.file, *pos, "`break` outside a loop"))?;
            ctx.fb.emit_jmp(brk);
        }
        Stmt::Continue(pos) => {
            let (cont, _) = *ctx
                .loops
                .last()
                .ok_or_else(|| CompileError::new(ctx.file, *pos, "`continue` outside a loop"))?;
            ctx.fb.emit_jmp(cont);
        }
        Stmt::Echo(e) => {
            compile_expr(ctx, e, repo)?;
            ctx.fb.emit(Instr::CallBuiltin {
                builtin: Builtin::Print,
                argc: 1,
            });
            ctx.fb.emit(Instr::Pop);
        }
    }
    Ok(())
}

fn compile_expr(ctx: &mut FnCtx<'_>, e: &Expr, repo: &mut RepoBuilder) -> Result<(), CompileError> {
    match e {
        Expr::Null => ctx.fb.emit(Instr::Null),
        Expr::Bool(true) => ctx.fb.emit(Instr::True),
        Expr::Bool(false) => ctx.fb.emit(Instr::False),
        Expr::Int(i) => ctx.fb.emit(Instr::Int(*i)),
        Expr::Float(f) => ctx.fb.emit(Instr::Double(*f)),
        Expr::Str(s) => {
            let id = repo.intern(s);
            ctx.fb.emit(Instr::Str(id));
        }
        Expr::Var(v) => {
            let slot = *ctx.locals.get(v.as_str()).ok_or_else(|| {
                CompileError::new(
                    ctx.file,
                    Pos::default(),
                    format!("undefined variable `${v}`"),
                )
            })?;
            ctx.fb.emit(Instr::GetL(slot));
        }
        Expr::This => {
            if !ctx.is_method {
                return Err(CompileError::new(
                    ctx.file,
                    Pos::default(),
                    "`$this` outside a method",
                ));
            }
            ctx.fb.emit(Instr::This);
        }
        Expr::VecLit(items) => {
            for i in items {
                compile_expr(ctx, i, repo)?;
            }
            ctx.fb.emit(Instr::NewVec(items.len() as u16));
        }
        Expr::DictLit(items) => {
            for (k, v) in items {
                compile_expr(ctx, k, repo)?;
                compile_expr(ctx, v, repo)?;
            }
            ctx.fb.emit(Instr::NewDict(items.len() as u16));
        }
        Expr::Unary(op, inner) => {
            compile_expr(ctx, inner, repo)?;
            ctx.fb.emit(Instr::Un(match op {
                UnaryOp::Neg => UnOp::Neg,
                UnaryOp::Not => UnOp::Not,
            }));
        }
        Expr::Binary(BinaryOp::And, a, b) => {
            let fail = ctx.fb.new_label();
            let end = ctx.fb.new_label();
            compile_expr(ctx, a, repo)?;
            ctx.fb.emit_jmp_z(fail);
            compile_expr(ctx, b, repo)?;
            ctx.fb.emit_jmp_z(fail);
            ctx.fb.emit(Instr::True);
            ctx.fb.emit_jmp(end);
            ctx.fb.bind(fail);
            ctx.fb.emit(Instr::False);
            ctx.fb.bind(end);
        }
        Expr::Binary(BinaryOp::Or, a, b) => {
            let succeed = ctx.fb.new_label();
            let end = ctx.fb.new_label();
            compile_expr(ctx, a, repo)?;
            ctx.fb.emit_jmp_nz(succeed);
            compile_expr(ctx, b, repo)?;
            ctx.fb.emit_jmp_nz(succeed);
            ctx.fb.emit(Instr::False);
            ctx.fb.emit_jmp(end);
            ctx.fb.bind(succeed);
            ctx.fb.emit(Instr::True);
            ctx.fb.bind(end);
        }
        Expr::Binary(op, a, b) => {
            compile_expr(ctx, a, repo)?;
            compile_expr(ctx, b, repo)?;
            let op = match op {
                BinaryOp::Add => BinOp::Add,
                BinaryOp::Sub => BinOp::Sub,
                BinaryOp::Mul => BinOp::Mul,
                BinaryOp::Div => BinOp::Div,
                BinaryOp::Mod => BinOp::Mod,
                BinaryOp::Concat => BinOp::Concat,
                BinaryOp::Eq => BinOp::Eq,
                BinaryOp::Neq => BinOp::Neq,
                BinaryOp::Lt => BinOp::Lt,
                BinaryOp::Le => BinOp::Le,
                BinaryOp::Gt => BinOp::Gt,
                BinaryOp::Ge => BinOp::Ge,
                BinaryOp::BitAnd => BinOp::BitAnd,
                BinaryOp::BitOr => BinOp::BitOr,
                BinaryOp::BitXor => BinOp::BitXor,
                BinaryOp::Shl => BinOp::Shl,
                BinaryOp::Shr => BinOp::Shr,
                BinaryOp::And | BinaryOp::Or => unreachable!("handled above"),
            };
            ctx.fb.emit(Instr::Bin(op));
        }
        Expr::Call { name, args, pos } => {
            // User functions shadow builtins.
            if let Some(&id) = ctx.env.func_ids.get(name.as_str()) {
                let arity = ctx.env.arities[id.index()] as usize;
                if arity != args.len() {
                    return Err(CompileError::new(
                        ctx.file,
                        *pos,
                        format!("`{name}` expects {arity} args, got {}", args.len()),
                    ));
                }
                for a in args {
                    compile_expr(ctx, a, repo)?;
                }
                ctx.fb.emit_raw(Instr::Call {
                    func: id,
                    argc: args.len() as u8,
                });
            } else if let Some(b) = Builtin::by_name(name) {
                if b.arity() != args.len() {
                    return Err(CompileError::new(
                        ctx.file,
                        *pos,
                        format!("`{name}` expects {} args, got {}", b.arity(), args.len()),
                    ));
                }
                for a in args {
                    compile_expr(ctx, a, repo)?;
                }
                ctx.fb.emit(Instr::CallBuiltin {
                    builtin: b,
                    argc: args.len() as u8,
                });
            } else {
                return Err(CompileError::new(
                    ctx.file,
                    *pos,
                    format!("unknown function `{name}`"),
                ));
            }
        }
        Expr::MethodCall { recv, method, args } => {
            compile_expr(ctx, recv, repo)?;
            for a in args {
                compile_expr(ctx, a, repo)?;
            }
            let name = repo.intern(method);
            ctx.fb.emit(Instr::CallMethod {
                name,
                argc: args.len() as u8,
            });
        }
        Expr::Prop { recv, prop } => {
            compile_expr(ctx, recv, repo)?;
            let name = repo.intern(prop);
            ctx.fb.emit(Instr::GetProp(name));
        }
        Expr::Index { recv, index } => {
            compile_expr(ctx, recv, repo)?;
            compile_expr(ctx, index, repo)?;
            ctx.fb.emit(Instr::Idx);
        }
        Expr::New { class, args, pos } => {
            let id = *ctx.env.class_ids.get(class.as_str()).ok_or_else(|| {
                CompileError::new(ctx.file, *pos, format!("unknown class `{class}`"))
            })?;
            ctx.fb.emit(Instr::NewObj(id));
            match ctx.env.ctor_of.get(class.as_str()) {
                Some((_, arity)) => {
                    if *arity as usize != args.len() {
                        return Err(CompileError::new(
                            ctx.file,
                            *pos,
                            format!(
                                "`{class}::__construct` expects {arity} args, got {}",
                                args.len()
                            ),
                        ));
                    }
                    // obj; dup; args...; callmethod __construct; pop result
                    ctx.fb.emit(Instr::Dup);
                    for a in args {
                        compile_expr(ctx, a, repo)?;
                    }
                    let ctor = repo.intern("__construct");
                    ctx.fb.emit(Instr::CallMethod {
                        name: ctor,
                        argc: args.len() as u8,
                    });
                    ctx.fb.emit(Instr::Pop);
                }
                None => {
                    if !args.is_empty() {
                        return Err(CompileError::new(
                            ctx.file,
                            *pos,
                            format!("`{class}` has no constructor but got {} args", args.len()),
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}
