//! The Hacklet lexer.

use crate::error::{CompileError, Pos};

/// A token's kind, carrying its payload where applicable.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Double-quoted string literal (escapes resolved).
    Str(String),
    /// A `$variable`.
    Var(String),
    /// A bare identifier or keyword.
    Ident(String),

    // Punctuation and operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `->`
    Arrow,
    /// `=>`
    FatArrow,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `.`
    Dot,
    /// `==`
    EqEq,
    /// `!=`
    BangEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `++`
    PlusPlus,
    /// `--`
    MinusMinus,
    /// `+=`
    PlusEq,
    /// `-=`
    MinusEq,
    /// `.=`
    DotEq,
    /// End of input.
    Eof,
}

/// A token with its source position.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// The kind and payload.
    pub kind: TokenKind,
    /// Position of the first character.
    pub pos: Pos,
}

/// Lexes a whole file into tokens (ending with [`TokenKind::Eof`]).
///
/// # Errors
///
/// Returns a [`CompileError`] on malformed numbers, unterminated strings,
/// or unexpected characters.
pub fn lex(file: &str, src: &str) -> Result<Vec<Token>, CompileError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! bump {
        () => {{
            if bytes[i] == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i];
        let pos = Pos { line, col };
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => bump!(),
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    bump!();
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                bump!();
                bump!();
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(CompileError::new(file, pos, "unterminated block comment"));
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        bump!();
                        bump!();
                        break;
                    }
                    bump!();
                }
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    bump!();
                }
                let mut is_float = false;
                if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                    is_float = true;
                    bump!();
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        bump!();
                    }
                }
                let text = &src[start..i];
                let kind = if is_float {
                    TokenKind::Float(text.parse().map_err(|_| {
                        CompileError::new(file, pos, format!("bad float literal `{text}`"))
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| {
                        CompileError::new(file, pos, format!("bad int literal `{text}`"))
                    })?)
                };
                out.push(Token { kind, pos });
            }
            b'"' => {
                bump!();
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(CompileError::new(file, pos, "unterminated string"));
                    }
                    match bytes[i] {
                        b'"' => {
                            bump!();
                            break;
                        }
                        b'\\' => {
                            bump!();
                            if i >= bytes.len() {
                                return Err(CompileError::new(file, pos, "unterminated string"));
                            }
                            let e = bytes[i];
                            s.push(match e {
                                b'n' => '\n',
                                b't' => '\t',
                                b'\\' => '\\',
                                b'"' => '"',
                                b'0' => '\0',
                                other => {
                                    return Err(CompileError::new(
                                        file,
                                        pos,
                                        format!("unknown escape `\\{}`", other as char),
                                    ))
                                }
                            });
                            bump!();
                        }
                        b => {
                            s.push(b as char);
                            bump!();
                        }
                    }
                }
                out.push(Token {
                    kind: TokenKind::Str(s),
                    pos,
                });
            }
            b'$' => {
                bump!();
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    bump!();
                }
                if start == i {
                    return Err(CompileError::new(file, pos, "`$` without a variable name"));
                }
                out.push(Token {
                    kind: TokenKind::Var(src[start..i].to_owned()),
                    pos,
                });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    bump!();
                }
                out.push(Token {
                    kind: TokenKind::Ident(src[start..i].to_owned()),
                    pos,
                });
            }
            _ => {
                let two = if i + 1 < bytes.len() {
                    &src[i..i + 2]
                } else {
                    ""
                };
                let kind2 = match two {
                    "->" => Some(TokenKind::Arrow),
                    "=>" => Some(TokenKind::FatArrow),
                    "==" => Some(TokenKind::EqEq),
                    "!=" => Some(TokenKind::BangEq),
                    "<=" => Some(TokenKind::Le),
                    ">=" => Some(TokenKind::Ge),
                    "&&" => Some(TokenKind::AndAnd),
                    "||" => Some(TokenKind::OrOr),
                    "<<" => Some(TokenKind::Shl),
                    ">>" => Some(TokenKind::Shr),
                    "++" => Some(TokenKind::PlusPlus),
                    "--" => Some(TokenKind::MinusMinus),
                    "+=" => Some(TokenKind::PlusEq),
                    "-=" => Some(TokenKind::MinusEq),
                    ".=" => Some(TokenKind::DotEq),
                    _ => None,
                };
                if let Some(kind) = kind2 {
                    bump!();
                    bump!();
                    out.push(Token { kind, pos });
                    continue;
                }
                let kind1 = match c {
                    b'(' => TokenKind::LParen,
                    b')' => TokenKind::RParen,
                    b'{' => TokenKind::LBrace,
                    b'}' => TokenKind::RBrace,
                    b'[' => TokenKind::LBracket,
                    b']' => TokenKind::RBracket,
                    b';' => TokenKind::Semi,
                    b',' => TokenKind::Comma,
                    b'=' => TokenKind::Assign,
                    b'+' => TokenKind::Plus,
                    b'-' => TokenKind::Minus,
                    b'*' => TokenKind::Star,
                    b'/' => TokenKind::Slash,
                    b'%' => TokenKind::Percent,
                    b'.' => TokenKind::Dot,
                    b'<' => TokenKind::Lt,
                    b'>' => TokenKind::Gt,
                    b'!' => TokenKind::Bang,
                    b'&' => TokenKind::Amp,
                    b'|' => TokenKind::Pipe,
                    b'^' => TokenKind::Caret,
                    other => {
                        return Err(CompileError::new(
                            file,
                            pos,
                            format!("unexpected character `{}`", other as char),
                        ))
                    }
                };
                bump!();
                out.push(Token { kind: kind1, pos });
            }
        }
    }
    out.push(Token {
        kind: TokenKind::Eof,
        pos: Pos { line, col },
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex("t.hl", src)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_numbers_strings_vars() {
        assert_eq!(
            kinds(r#"42 2.5 "hi\n" $x foo"#),
            vec![
                TokenKind::Int(42),
                TokenKind::Float(2.5),
                TokenKind::Str("hi\n".into()),
                TokenKind::Var("x".into()),
                TokenKind::Ident("foo".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_two_char_operators() {
        assert_eq!(
            kinds("-> => == != <= >= && || << >> ++ += .="),
            vec![
                TokenKind::Arrow,
                TokenKind::FatArrow,
                TokenKind::EqEq,
                TokenKind::BangEq,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Shl,
                TokenKind::Shr,
                TokenKind::PlusPlus,
                TokenKind::PlusEq,
                TokenKind::DotEq,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("1 // line\n2 /* block\nstill */ 3"),
            vec![
                TokenKind::Int(1),
                TokenKind::Int(2),
                TokenKind::Int(3),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn positions_track_lines() {
        let toks = lex("t.hl", "1\n  2").unwrap();
        assert_eq!(toks[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(toks[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(lex("t.hl", "\"unterminated").is_err());
        assert!(lex("t.hl", "$ ").is_err());
        assert!(lex("t.hl", "#").is_err());
        assert!(lex("t.hl", "/* never closed").is_err());
    }
}
