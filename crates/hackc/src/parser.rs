//! Recursive-descent parser for Hacklet.

use crate::ast::*;
use crate::error::{CompileError, Pos};
use crate::lexer::{lex, Token, TokenKind};

/// Parses a file into a [`Program`].
///
/// # Errors
///
/// Returns the first lexical or syntactic error.
pub fn parse(file: &str, src: &str) -> Result<Program, CompileError> {
    let tokens = lex(file, src)?;
    let mut p = Parser {
        file,
        tokens,
        at: 0,
    };
    let mut items = Vec::new();
    while !p.check(&TokenKind::Eof) {
        items.push(p.item()?);
    }
    Ok(Program { items })
}

struct Parser<'f> {
    file: &'f str,
    tokens: Vec<Token>,
    at: usize,
}

impl Parser<'_> {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.at].kind
    }

    fn pos(&self) -> Pos {
        self.tokens[self.at].pos
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.at].kind.clone();
        if self.at + 1 < self.tokens.len() {
            self.at += 1;
        }
        t
    }

    fn check(&self, kind: &TokenKind) -> bool {
        self.peek() == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.check(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), CompileError> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn err(&self, message: impl Into<String>) -> CompileError {
        CompileError::new(self.file, self.pos(), message)
    }

    fn ident(&mut self, what: &str) -> Result<String, CompileError> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn keyword(&self) -> Option<&str> {
        match self.peek() {
            TokenKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    fn item(&mut self) -> Result<Item, CompileError> {
        match self.keyword() {
            Some("function") => {
                self.bump();
                Ok(Item::Func(self.func_decl()?))
            }
            Some("class") => {
                self.bump();
                Ok(Item::Class(self.class_decl()?))
            }
            _ => Err(self.err("expected `function` or `class`")),
        }
    }

    fn func_decl(&mut self) -> Result<FuncDecl, CompileError> {
        let pos = self.pos();
        let name = self.ident("function name")?;
        self.expect(&TokenKind::LParen, "`(`")?;
        let mut params = Vec::new();
        if !self.check(&TokenKind::RParen) {
            loop {
                match self.bump() {
                    TokenKind::Var(v) => params.push(v),
                    other => return Err(self.err(format!("expected parameter, found {other:?}"))),
                }
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen, "`)`")?;
        let body = self.block()?;
        Ok(FuncDecl {
            name,
            params,
            body,
            pos,
        })
    }

    fn class_decl(&mut self) -> Result<ClassDecl, CompileError> {
        let pos = self.pos();
        let name = self.ident("class name")?;
        let parent = if self.keyword() == Some("extends") {
            self.bump();
            Some(self.ident("parent class name")?)
        } else {
            None
        };
        self.expect(&TokenKind::LBrace, "`{`")?;
        let mut props = Vec::new();
        let mut methods = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            match self.keyword() {
                Some(vis @ ("public" | "private")) => {
                    let public = vis == "public";
                    let ppos = self.pos();
                    self.bump();
                    let pname = match self.bump() {
                        TokenKind::Var(v) => v,
                        other => {
                            return Err(self.err(format!("expected property name, found {other:?}")))
                        }
                    };
                    let default = if self.eat(&TokenKind::Assign) {
                        Some(self.expr()?)
                    } else {
                        None
                    };
                    self.expect(&TokenKind::Semi, "`;`")?;
                    props.push(PropDef {
                        name: pname,
                        public,
                        default,
                        pos: ppos,
                    });
                }
                Some("function") => {
                    self.bump();
                    methods.push(self.func_decl()?);
                }
                _ => return Err(self.err("expected property or method declaration")),
            }
        }
        Ok(ClassDecl {
            name,
            parent,
            props,
            methods,
            pos,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect(&TokenKind::LBrace, "`{`")?;
        let mut stmts = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let pos = self.pos();
        match self.keyword() {
            Some("return") => {
                self.bump();
                if self.eat(&TokenKind::Semi) {
                    return Ok(Stmt::Return(None));
                }
                let e = self.expr()?;
                self.expect(&TokenKind::Semi, "`;`")?;
                return Ok(Stmt::Return(Some(e)));
            }
            Some("break") => {
                self.bump();
                self.expect(&TokenKind::Semi, "`;`")?;
                return Ok(Stmt::Break(pos));
            }
            Some("continue") => {
                self.bump();
                self.expect(&TokenKind::Semi, "`;`")?;
                return Ok(Stmt::Continue(pos));
            }
            Some("echo") => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::Semi, "`;`")?;
                return Ok(Stmt::Echo(e));
            }
            Some("if") => {
                self.bump();
                self.expect(&TokenKind::LParen, "`(`")?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                let then_body = self.block()?;
                let else_body = if self.keyword() == Some("else") {
                    self.bump();
                    if self.keyword() == Some("if") {
                        vec![self.stmt()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                return Ok(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                });
            }
            Some("while") => {
                self.bump();
                self.expect(&TokenKind::LParen, "`(`")?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                let body = self.block()?;
                return Ok(Stmt::While { cond, body });
            }
            Some("for") => {
                self.bump();
                self.expect(&TokenKind::LParen, "`(`")?;
                let init = if self.check(&TokenKind::Semi) {
                    None
                } else {
                    Some(Box::new(self.simple_stmt()?))
                };
                self.expect(&TokenKind::Semi, "`;`")?;
                let cond = if self.check(&TokenKind::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&TokenKind::Semi, "`;`")?;
                let step = if self.check(&TokenKind::RParen) {
                    None
                } else {
                    Some(Box::new(self.simple_stmt()?))
                };
                self.expect(&TokenKind::RParen, "`)`")?;
                let body = self.block()?;
                return Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                });
            }
            Some("foreach") => {
                self.bump();
                self.expect(&TokenKind::LParen, "`(`")?;
                let iter = self.expr()?;
                if self.keyword() != Some("as") {
                    return Err(self.err("expected `as` in foreach"));
                }
                self.bump();
                let first = match self.bump() {
                    TokenKind::Var(v) => v,
                    other => return Err(self.err(format!("expected variable, found {other:?}"))),
                };
                let (key, value) = if self.eat(&TokenKind::FatArrow) {
                    let v = match self.bump() {
                        TokenKind::Var(v) => v,
                        other => {
                            return Err(self.err(format!("expected variable, found {other:?}")))
                        }
                    };
                    (Some(first), v)
                } else {
                    (None, first)
                };
                self.expect(&TokenKind::RParen, "`)`")?;
                let body = self.block()?;
                return Ok(Stmt::Foreach {
                    iter,
                    key,
                    value,
                    body,
                });
            }
            _ => {}
        }
        let s = self.simple_stmt()?;
        self.expect(&TokenKind::Semi, "`;`")?;
        Ok(s)
    }

    /// A statement without its trailing `;`: assignment, compound
    /// assignment, `++`/`--`, or a bare expression.
    fn simple_stmt(&mut self) -> Result<Stmt, CompileError> {
        let e = self.expr()?;
        // Postfix ++/-- as statement sugar.
        if self.check(&TokenKind::PlusPlus) || self.check(&TokenKind::MinusMinus) {
            let inc = self.bump() == TokenKind::PlusPlus;
            return match e {
                Expr::Var(v) => {
                    let delta = Expr::Int(if inc { 1 } else { -1 });
                    Ok(Stmt::Assign {
                        var: v.clone(),
                        value: Expr::Binary(BinaryOp::Add, Box::new(Expr::Var(v)), Box::new(delta)),
                    })
                }
                _ => Err(self.err("`++`/`--` requires a variable")),
            };
        }
        let op = match self.peek() {
            TokenKind::Assign => None,
            TokenKind::PlusEq => Some(BinaryOp::Add),
            TokenKind::MinusEq => Some(BinaryOp::Sub),
            TokenKind::DotEq => Some(BinaryOp::Concat),
            _ => return Ok(Stmt::Expr(e)),
        };
        self.bump();
        let rhs = self.expr()?;
        let value = match op {
            None => rhs,
            Some(op) => Expr::Binary(op, Box::new(e.clone()), Box::new(rhs)),
        };
        match e {
            Expr::Var(v) => Ok(Stmt::Assign { var: v, value }),
            Expr::Prop { recv, prop } => Ok(Stmt::PropAssign {
                recv: *recv,
                prop,
                value,
            }),
            Expr::Index { recv, index } => Ok(Stmt::IndexAssign {
                recv: *recv,
                index: *index,
                value,
            }),
            _ => Err(self.err("invalid assignment target")),
        }
    }

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.binary(0)
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, CompileError> {
        let mut lhs = self.unary()?;
        loop {
            let (op, prec) = match self.peek() {
                TokenKind::OrOr => (BinaryOp::Or, 1),
                TokenKind::AndAnd => (BinaryOp::And, 2),
                TokenKind::Pipe => (BinaryOp::BitOr, 3),
                TokenKind::Caret => (BinaryOp::BitXor, 3),
                TokenKind::Amp => (BinaryOp::BitAnd, 3),
                TokenKind::EqEq => (BinaryOp::Eq, 4),
                TokenKind::BangEq => (BinaryOp::Neq, 4),
                TokenKind::Lt => (BinaryOp::Lt, 5),
                TokenKind::Le => (BinaryOp::Le, 5),
                TokenKind::Gt => (BinaryOp::Gt, 5),
                TokenKind::Ge => (BinaryOp::Ge, 5),
                TokenKind::Shl => (BinaryOp::Shl, 6),
                TokenKind::Shr => (BinaryOp::Shr, 6),
                TokenKind::Plus => (BinaryOp::Add, 7),
                TokenKind::Minus => (BinaryOp::Sub, 7),
                TokenKind::Dot => (BinaryOp::Concat, 7),
                TokenKind::Star => (BinaryOp::Mul, 8),
                TokenKind::Slash => (BinaryOp::Div, 8),
                TokenKind::Percent => (BinaryOp::Mod, 8),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary(prec + 1)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        match self.peek() {
            TokenKind::Minus => {
                self.bump();
                Ok(Expr::Unary(UnaryOp::Neg, Box::new(self.unary()?)))
            }
            TokenKind::Bang => {
                self.bump();
                Ok(Expr::Unary(UnaryOp::Not, Box::new(self.unary()?)))
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.primary()?;
        loop {
            match self.peek() {
                TokenKind::Arrow => {
                    self.bump();
                    let name = self.ident("property or method name")?;
                    if self.eat(&TokenKind::LParen) {
                        let args = self.args()?;
                        e = Expr::MethodCall {
                            recv: Box::new(e),
                            method: name,
                            args,
                        };
                    } else {
                        e = Expr::Prop {
                            recv: Box::new(e),
                            prop: name,
                        };
                    }
                }
                TokenKind::LBracket => {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect(&TokenKind::RBracket, "`]`")?;
                    e = Expr::Index {
                        recv: Box::new(e),
                        index: Box::new(idx),
                    };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn args(&mut self) -> Result<Vec<Expr>, CompileError> {
        let mut args = Vec::new();
        if !self.check(&TokenKind::RParen) {
            loop {
                args.push(self.expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen, "`)`")?;
        Ok(args)
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        let pos = self.pos();
        match self.bump() {
            TokenKind::Int(v) => Ok(Expr::Int(v)),
            TokenKind::Float(v) => Ok(Expr::Float(v)),
            TokenKind::Str(s) => Ok(Expr::Str(s)),
            TokenKind::Var(v) => {
                if v == "this" {
                    Ok(Expr::This)
                } else {
                    Ok(Expr::Var(v))
                }
            }
            TokenKind::LParen => {
                let e = self.expr()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            TokenKind::Ident(id) => match id.as_str() {
                "null" => Ok(Expr::Null),
                "true" => Ok(Expr::Bool(true)),
                "false" => Ok(Expr::Bool(false)),
                "new" => {
                    let class = self.ident("class name")?;
                    let args = if self.eat(&TokenKind::LParen) {
                        self.args()?
                    } else {
                        Vec::new()
                    };
                    Ok(Expr::New { class, args, pos })
                }
                "vec" => {
                    self.expect(&TokenKind::LBracket, "`[`")?;
                    let mut items = Vec::new();
                    if !self.check(&TokenKind::RBracket) {
                        loop {
                            items.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RBracket, "`]`")?;
                    Ok(Expr::VecLit(items))
                }
                "dict" => {
                    self.expect(&TokenKind::LBracket, "`[`")?;
                    let mut items = Vec::new();
                    if !self.check(&TokenKind::RBracket) {
                        loop {
                            let k = self.expr()?;
                            self.expect(&TokenKind::FatArrow, "`=>`")?;
                            let v = self.expr()?;
                            items.push((k, v));
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RBracket, "`]`")?;
                    Ok(Expr::DictLit(items))
                }
                _ => {
                    if self.eat(&TokenKind::LParen) {
                        let args = self.args()?;
                        Ok(Expr::Call {
                            name: id,
                            args,
                            pos,
                        })
                    } else {
                        Err(CompileError::new(
                            self.file,
                            pos,
                            format!("bare identifier `{id}` (functions need `(...)`)"),
                        ))
                    }
                }
            },
            other => Err(CompileError::new(
                self.file,
                pos,
                format!("unexpected token {other:?}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(src: &str) -> Program {
        parse("t.hl", src).unwrap()
    }

    #[test]
    fn parses_function_with_params() {
        let prog = p("function add($a, $b) { return $a + $b; }");
        assert_eq!(prog.items.len(), 1);
        let Item::Func(f) = &prog.items[0] else {
            panic!("expected func")
        };
        assert_eq!(f.name, "add");
        assert_eq!(f.params, vec!["a", "b"]);
        assert_eq!(f.body.len(), 1);
    }

    #[test]
    fn precedence_mul_binds_tighter() {
        let prog = p("function f() { return 1 + 2 * 3; }");
        let Item::Func(f) = &prog.items[0] else {
            panic!()
        };
        let Stmt::Return(Some(Expr::Binary(BinaryOp::Add, _, rhs))) = &f.body[0] else {
            panic!("expected add at top")
        };
        assert!(matches!(**rhs, Expr::Binary(BinaryOp::Mul, _, _)));
    }

    #[test]
    fn parses_class_with_props_and_methods() {
        let prog = p(r#"
            class Point extends Base {
                public $x = 0;
                private $tag = "p";
                function get_x() { return $this->x; }
            }
        "#);
        let Item::Class(c) = &prog.items[0] else {
            panic!()
        };
        assert_eq!(c.name, "Point");
        assert_eq!(c.parent.as_deref(), Some("Base"));
        assert_eq!(c.props.len(), 2);
        assert!(c.props[0].public);
        assert!(!c.props[1].public);
        assert_eq!(c.methods.len(), 1);
    }

    #[test]
    fn parses_control_flow() {
        let prog = p(r#"
            function f($n) {
                $s = 0;
                for ($i = 0; $i < $n; $i++) {
                    if ($i % 2 == 0) { continue; }
                    $s += $i;
                }
                while ($s > 100) { $s = $s - 1; break; }
                foreach (vec[1,2] as $v) { echo $v; }
                foreach (dict["a" => 1] as $k => $v) { echo $k; }
                return $s;
            }
        "#);
        let Item::Func(f) = &prog.items[0] else {
            panic!()
        };
        assert_eq!(f.body.len(), 6);
    }

    #[test]
    fn parses_chained_postfix() {
        let prog = p("function f($o) { return $o->a->b($o->c)[0]; }");
        let Item::Func(f) = &prog.items[0] else {
            panic!()
        };
        let Stmt::Return(Some(Expr::Index { recv, .. })) = &f.body[0] else {
            panic!()
        };
        assert!(matches!(**recv, Expr::MethodCall { .. }));
    }

    #[test]
    fn parses_new_and_prop_assign() {
        let prog = p("function f() { $p = new Point(1, 2); $p->x = 5; $p->y += 1; }");
        let Item::Func(f) = &prog.items[0] else {
            panic!()
        };
        assert!(matches!(f.body[0], Stmt::Assign { .. }));
        assert!(matches!(f.body[1], Stmt::PropAssign { .. }));
        assert!(matches!(f.body[2], Stmt::PropAssign { .. }));
    }

    #[test]
    fn short_circuit_ops_parse() {
        let prog = p("function f($a, $b) { return $a && $b || !$a; }");
        let Item::Func(f) = &prog.items[0] else {
            panic!()
        };
        let Stmt::Return(Some(Expr::Binary(BinaryOp::Or, _, _))) = &f.body[0] else {
            panic!("|| should be outermost")
        };
    }

    #[test]
    fn error_messages_have_positions() {
        let e = parse("t.hl", "function f( { }").unwrap_err();
        assert_eq!(e.pos.line, 1);
        assert!(e.message.contains("expected parameter"));
    }

    #[test]
    fn elseif_chains() {
        let prog = p("function f($x) { if ($x) { return 1; } else if ($x == 2) { return 2; } else { return 3; } }");
        let Item::Func(f) = &prog.items[0] else {
            panic!()
        };
        let Stmt::If { else_body, .. } = &f.body[0] else {
            panic!()
        };
        assert!(matches!(else_body[0], Stmt::If { .. }));
    }
}
