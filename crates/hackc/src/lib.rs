//! `hackc` — the offline compiler for **Hacklet**, a small PHP/Hack-like
//! dynamic language.
//!
//! HHVM's deployment model compiles Hack source to bytecode *offline* and
//! ships the resulting repo to every web server (paper §II-A). This crate
//! reproduces that step for Hacklet, a deliberately small dialect with the
//! features the paper's mechanisms care about: dynamically-typed values,
//! classes with inheritance and observable property order, dynamic method
//! dispatch, closures over `$this`, arrays, and string operations.
//!
//! # Language sketch
//!
//! ```text
//! class Point extends Base {
//!   public $x = 0;
//!   private $tag = "p";
//!   function mag2() { return $this->x * $this->x; }
//! }
//! function main($n) {
//!   $sum = 0;
//!   for ($i = 0; $i < $n; $i = $i + 1) { $sum = $sum + $i; }
//!   if ($sum > 10 && $n != 0) { return $sum; }
//!   return 0;
//! }
//! ```
//!
//! # Example
//!
//! ```
//! let repo = hackc::compile_unit("m.hl", "function main() { return 6 * 7; }")?;
//! let mut vm = vm::Vm::new(&repo);
//! assert_eq!(vm.call_by_name("main", &[])?, vm::Value::Int(42));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod ast;
mod compile;
mod error;
mod lexer;
mod parser;

pub use ast::{BinaryOp, ClassDecl, Expr, FuncDecl, Item, Program, PropDef, Stmt, UnaryOp};
pub use compile::{compile_program, compile_unit};
pub use error::{CompileError, Pos};
pub use lexer::{lex, Token, TokenKind};
pub use parser::parse;
