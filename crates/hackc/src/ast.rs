//! The Hacklet abstract syntax tree.

use crate::error::Pos;

/// A whole parsed file.
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// A top-level item.
#[derive(Clone, Debug, PartialEq)]
pub enum Item {
    /// A free function.
    Func(FuncDecl),
    /// A class declaration.
    Class(ClassDecl),
}

/// A function or method declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct FuncDecl {
    /// Function name.
    pub name: String,
    /// Parameter variable names.
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source position of the declaration.
    pub pos: Pos,
}

/// A property definition inside a class.
#[derive(Clone, Debug, PartialEq)]
pub struct PropDef {
    /// Property name (without `$`).
    pub name: String,
    /// Whether declared `public` (vs `private`).
    pub public: bool,
    /// Optional literal default.
    pub default: Option<Expr>,
    /// Source position.
    pub pos: Pos,
}

/// A class declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct ClassDecl {
    /// Class name.
    pub name: String,
    /// Parent class name, if `extends` was used.
    pub parent: Option<String>,
    /// Properties in declared order.
    pub props: Vec<PropDef>,
    /// Methods in declared order.
    pub methods: Vec<FuncDecl>,
    /// Source position.
    pub pos: Pos,
}

/// Binary operators (surface level; compiled to [`bytecode::BinOp`] except
/// the short-circuiting `And`/`Or`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `.` (string concatenation)
    Concat,
    /// `==`
    Eq,
    /// `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    And,
    /// `||` (short-circuit)
    Or,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnaryOp {
    /// `-`
    Neg,
    /// `!`
    Not,
}

/// An expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// `$name`
    Var(String),
    /// `$this`
    This,
    /// `vec[e1, e2, ...]`
    VecLit(Vec<Expr>),
    /// `dict[k1 => v1, ...]`
    DictLit(Vec<(Expr, Expr)>),
    /// `op e`
    Unary(UnaryOp, Box<Expr>),
    /// `a op b`
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// `f(args)` — resolved to a repo function or builtin at compile time.
    Call {
        name: String,
        args: Vec<Expr>,
        pos: Pos,
    },
    /// `recv->m(args)` — dynamic dispatch.
    MethodCall {
        recv: Box<Expr>,
        method: String,
        args: Vec<Expr>,
    },
    /// `recv->prop`
    Prop { recv: Box<Expr>, prop: String },
    /// `e[k]`
    Index { recv: Box<Expr>, index: Box<Expr> },
    /// `new C(args)` — runs `__construct` if the class declares one.
    New {
        class: String,
        args: Vec<Expr>,
        pos: Pos,
    },
}

/// A statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// Expression statement (value discarded).
    Expr(Expr),
    /// `$x = e;`
    Assign { var: String, value: Expr },
    /// `recv->prop = e;`
    PropAssign {
        recv: Expr,
        prop: String,
        value: Expr,
    },
    /// `recv[k] = e;`
    IndexAssign {
        recv: Expr,
        index: Expr,
        value: Expr,
    },
    /// `if (c) { .. } else { .. }`
    If {
        cond: Expr,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
    },
    /// `while (c) { .. }`
    While { cond: Expr, body: Vec<Stmt> },
    /// `for (init; cond; step) { .. }`
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Box<Stmt>>,
        body: Vec<Stmt>,
    },
    /// `foreach (e as $v)` / `foreach (e as $k => $v)`
    Foreach {
        iter: Expr,
        key: Option<String>,
        value: String,
        body: Vec<Stmt>,
    },
    /// `return e;` (`return;` returns null)
    Return(Option<Expr>),
    /// `break;`
    Break(Pos),
    /// `continue;`
    Continue(Pos),
    /// `echo e;` (sugar for `print(e)`)
    Echo(Expr),
}
