//! Compile-time diagnostics.

use std::fmt;

/// A source position (1-based line and column).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// An error produced by the lexer, parser or bytecode compiler.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompileError {
    /// The file being compiled.
    pub file: String,
    /// Where the error occurred.
    pub pos: Pos,
    /// Human-readable description.
    pub message: String,
}

impl CompileError {
    pub(crate) fn new(file: &str, pos: Pos, message: impl Into<String>) -> Self {
        Self {
            file: file.to_owned(),
            pos,
            message: message.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.file, self.pos, self.message)
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location() {
        let e = CompileError::new("a.hl", Pos { line: 3, col: 7 }, "unexpected `}`");
        assert_eq!(e.to_string(), "a.hl:3:7: unexpected `}`");
    }
}
