//! End-to-end tests: Hacklet source → bytecode → interpreter result.

use hackc::compile_unit;
use vm::{Value, Vm};

fn run(src: &str, func: &str, args: &[Value]) -> Value {
    let repo = compile_unit("test.hl", src).expect("compiles");
    bytecode::verify_repo(&repo).expect("verifies");
    let mut vm = Vm::new(&repo);
    vm.call_by_name(func, args).expect("runs")
}

fn run_main(src: &str) -> Value {
    run(src, "main", &[])
}

#[test]
fn arithmetic_precedence() {
    assert_eq!(
        run_main("function main() { return 2 + 3 * 4 - 6 / 2; }"),
        Value::Int(11)
    );
}

#[test]
fn string_concat_and_strlen() {
    assert_eq!(
        run_main(r#"function main() { $s = "ab" . "cd"; return strlen($s . "!"); }"#),
        Value::Int(5)
    );
}

#[test]
fn while_loop_sums() {
    let src = r#"
        function main() {
            $i = 0; $sum = 0;
            while ($i < 100) { $sum += $i; $i++; }
            return $sum;
        }
    "#;
    assert_eq!(run_main(src), Value::Int(4950));
}

#[test]
fn for_loop_with_continue_and_break() {
    let src = r#"
        function main() {
            $sum = 0;
            for ($i = 0; $i < 100; $i++) {
                if ($i % 2 == 0) { continue; }
                if ($i > 10) { break; }
                $sum += $i;
            }
            return $sum;
        }
    "#;
    // 1 + 3 + 5 + 7 + 9 = 25
    assert_eq!(run_main(src), Value::Int(25));
}

#[test]
fn foreach_over_vec_and_dict() {
    let src = r#"
        function main() {
            $total = 0;
            foreach (vec[10, 20, 30] as $v) { $total += $v; }
            $names = "";
            foreach (dict["a" => 1, "b" => 2] as $k => $v) {
                $names = $names . $k;
                $total += $v;
            }
            return $names . $total;
        }
    "#;
    assert_eq!(run_main(src), Value::str("ab63"));
}

#[test]
fn functions_call_each_other_forward() {
    let src = r#"
        function main() { return helper(5) + 1; }
        function helper($x) { return $x * 2; }
    "#;
    assert_eq!(run_main(src), Value::Int(11));
}

#[test]
fn recursion_fib() {
    let src = r#"
        function fib($n) {
            if ($n < 2) { return $n; }
            return fib($n - 1) + fib($n - 2);
        }
    "#;
    assert_eq!(run(src, "fib", &[Value::Int(12)]), Value::Int(144));
}

#[test]
fn classes_with_constructor_and_methods() {
    let src = r#"
        class Point {
            public $x = 0;
            public $y = 0;
            function __construct($x, $y) { $this->x = $x; $this->y = $y; }
            function mag2() { return $this->x * $this->x + $this->y * $this->y; }
        }
        function main() {
            $p = new Point(3, 4);
            return $p->mag2();
        }
    "#;
    assert_eq!(run_main(src), Value::Int(25));
}

#[test]
fn inheritance_and_override() {
    let src = r#"
        class Animal {
            public $name = "generic";
            function speak() { return "..."; }
            function describe() { return $this->name . " says " . $this->speak(); }
        }
        class Dog extends Animal {
            function __construct($n) { $this->name = $n; }
            function speak() { return "woof"; }
        }
        function main() {
            $d = new Dog("rex");
            return $d->describe();
        }
    "#;
    assert_eq!(run_main(src), Value::str("rex says woof"));
}

#[test]
fn inherited_constructor_runs() {
    let src = r#"
        class Base {
            public $v = 0;
            function __construct($v) { $this->v = $v; }
        }
        class Kid extends Base {}
        function main() { $k = new Kid(9); return $k->v; }
    "#;
    assert_eq!(run_main(src), Value::Int(9));
}

#[test]
fn short_circuit_evaluation_skips_rhs() {
    let src = r#"
        function boom() { return 1 / 0; }
        function main() {
            if (false && boom()) { return 1; }
            if (true || boom()) { return 2; }
            return 3;
        }
    "#;
    assert_eq!(run_main(src), Value::Int(2));
}

#[test]
fn vec_and_dict_mutation() {
    let src = r#"
        function main() {
            $v = vec[1, 2, 3];
            $v[1] = 20;
            $v[3] = 40;
            $d = dict["k" => 1];
            $d["k"] = $d["k"] + 1;
            $d["j"] = 10;
            return $v[0] + $v[1] + $v[3] + $d["k"] + $d["j"] + count($v);
        }
    "#;
    assert_eq!(run_main(src), Value::Int(1 + 20 + 40 + 2 + 10 + 4));
}

#[test]
fn echo_writes_output() {
    let repo = compile_unit(
        "t.hl",
        r#"function main() { echo "x="; echo 42; return null; }"#,
    )
    .unwrap();
    let mut vm = Vm::new(&repo);
    vm.call_by_name("main", &[]).unwrap();
    assert_eq!(vm.take_output(), "x=42");
}

#[test]
fn builtins_work_from_source() {
    let src = r#"
        function main() {
            $v = vec[];
            push($v, 5);
            push($v, 7);
            return max(min(10, 20), abs(-3)) + count($v) + to_int("8");
        }
    "#;
    assert_eq!(run_main(src), Value::Int(10 + 2 + 8));
}

#[test]
fn multi_file_programs_link() {
    let files = [
        ("lib.hl", "function square($x) { return $x * $x; }"),
        ("main.hl", "function main() { return square(7); }"),
    ];
    let repo = hackc::compile_program(&files).unwrap();
    let mut vm = Vm::new(&repo);
    assert_eq!(vm.call_by_name("main", &[]).unwrap(), Value::Int(49));
    // main.hl triggers lazy load of lib.hl on first call.
    assert_eq!(vm.loader().loaded_count(), 2);
}

#[test]
fn prop_defaults_including_arrays() {
    let src = r#"
        class Config {
            public $limit = 10;
            public $tags = vec["a", "b"];
            public $map = dict["k" => 1];
        }
        function main() {
            $c = new Config();
            return $c->limit + count($c->tags) + $c->map["k"];
        }
    "#;
    assert_eq!(run_main(src), Value::Int(13));
}

#[test]
fn compile_errors_are_reported() {
    assert!(compile_unit("t.hl", "function f() { return $nope; }")
        .unwrap_err()
        .message
        .contains("undefined variable"));
    assert!(compile_unit("t.hl", "function f() { return g(); }")
        .unwrap_err()
        .message
        .contains("unknown function"));
    assert!(compile_unit("t.hl", "function f() { break; }")
        .unwrap_err()
        .message
        .contains("outside a loop"));
    assert!(compile_unit("t.hl", "function f() { return $this; }")
        .unwrap_err()
        .message
        .contains("outside a method"));
    assert!(compile_unit(
        "t.hl",
        "function f($a) { return 0; } function g() { return f(); }"
    )
    .unwrap_err()
    .message
    .contains("expects 1 args"));
    assert!(compile_unit("t.hl", "class A extends B {}")
        .unwrap_err()
        .message
        .contains("unknown parent"));
    assert!(compile_unit("t.hl", "class A extends A {}")
        .unwrap_err()
        .message
        .contains("cycle"));
}

#[test]
fn nested_loops_break_inner_only() {
    let src = r#"
        function main() {
            $count = 0;
            for ($i = 0; $i < 3; $i++) {
                for ($j = 0; $j < 10; $j++) {
                    if ($j == 2) { break; }
                    $count++;
                }
            }
            return $count;
        }
    "#;
    assert_eq!(run_main(src), Value::Int(6));
}

#[test]
fn every_compiled_function_passes_the_verifier() {
    let src = r#"
        class C { public $p = 1; function m($a) { return $a + $this->p; } }
        function main() {
            $c = new C();
            $t = 0;
            foreach (vec[1,2,3] as $v) { $t += $c->m($v); }
            return $t;
        }
    "#;
    let repo = compile_unit("t.hl", src).unwrap();
    bytecode::verify_repo(&repo).unwrap();
}
