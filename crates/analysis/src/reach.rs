//! Block reachability and dead-code detection, built on [`crate::dataflow`].

use bytecode::{BlockId, Cfg};

use crate::dataflow::{solve, Analysis, Direction, JoinSemiLattice};

/// The two-point reachability lattice: unreached (bottom) or reached.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Reached(pub bool);

impl JoinSemiLattice for Reached {
    fn join(&mut self, other: &Self) -> bool {
        let changed = !self.0 && other.0;
        self.0 |= other.0;
        changed
    }
}

struct Reachability;

impl Analysis for Reachability {
    type State = Reached;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self) -> Reached {
        Reached(true)
    }

    fn bottom(&self) -> Reached {
        Reached(false)
    }

    fn transfer(&self, _cfg: &Cfg, _b: BlockId, s: &Reached) -> Reached {
        *s
    }
}

/// Per-block reachability from the entry block, indexed by [`BlockId`].
pub fn reachable_blocks(cfg: &Cfg) -> Vec<bool> {
    solve(cfg, &Reachability)
        .input
        .iter()
        .map(|r| r.0)
        .collect()
}

/// The blocks no execution can reach — dead code.
pub fn unreachable_blocks(cfg: &Cfg) -> Vec<BlockId> {
    reachable_blocks(cfg)
        .iter()
        .enumerate()
        .filter(|(_, &r)| !r)
        .map(|(i, _)| BlockId(i as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytecode::{Func, FuncId, Instr, StrId, UnitId};

    fn func(code: Vec<Instr>) -> Func {
        Func {
            id: FuncId::new(0),
            name: StrId::new(0),
            unit: UnitId::new(0),
            params: 1,
            locals: 1,
            class: None,
            code,
        }
    }

    #[test]
    fn all_blocks_reachable_in_diamond() {
        let f = func(vec![
            Instr::GetL(0),
            Instr::JmpZ(4),
            Instr::Int(1),
            Instr::Jmp(5),
            Instr::Int(2),
            Instr::Ret,
        ]);
        let cfg = Cfg::build(&f);
        assert!(reachable_blocks(&cfg).iter().all(|&r| r));
        assert!(unreachable_blocks(&cfg).is_empty());
    }

    #[test]
    fn code_after_unconditional_jump_is_dead() {
        let f = func(vec![
            Instr::Jmp(3), // 0 b0 -> b2
            Instr::Int(1), // 1 b1: dead
            Instr::Jmp(3), // 2 b1 -> b2
            Instr::Ret,    // 3 b2 — NB: needs one stack value
        ]);
        let cfg = Cfg::build(&f);
        assert_eq!(unreachable_blocks(&cfg), vec![BlockId(1)]);
    }

    #[test]
    fn loops_do_not_confuse_reachability() {
        let f = func(vec![
            Instr::GetL(0), // 0 b0
            Instr::JmpZ(5), // 1
            Instr::GetL(0), // 2 b1
            Instr::Pop,     // 3
            Instr::Jmp(0),  // 4 -> b0
            Instr::Ret,     // 5 b2
        ]);
        let cfg = Cfg::build(&f);
        assert!(reachable_blocks(&cfg).iter().all(|&r| r));
    }
}
