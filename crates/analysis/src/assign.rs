//! Definite assignment of locals — a forward *must* analysis.
//!
//! A local is definitely assigned at a point if **every** path from the
//! entry writes it first; parameters start assigned. Reads of locals that
//! are not definitely assigned observe the VM's implicit null — legal, but
//! almost always a bug in the source, so the linter surfaces them as
//! warnings.

use bytecode::{BlockId, Cfg, Func, Instr, Local};

use crate::dataflow::{solve, Analysis, Direction, JoinSemiLattice};

/// A fixed-width bitset of locals; the *must* join is set intersection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LocalSet {
    words: Vec<u64>,
}

impl LocalSet {
    /// The empty set sized for `n` locals.
    pub fn empty(n: u16) -> LocalSet {
        LocalSet {
            words: vec![0; (n as usize).div_ceil(64).max(1)],
        }
    }

    /// Inserts a local.
    pub fn insert(&mut self, l: Local) {
        self.words[l as usize / 64] |= 1 << (l % 64);
    }

    /// Whether the set contains a local.
    pub fn contains(&self, l: Local) -> bool {
        (self.words[l as usize / 64] >> (l % 64)) & 1 == 1
    }
}

impl JoinSemiLattice for LocalSet {
    // Must-analysis: joined facts are the intersection. (Bigger in this
    // lattice's order = fewer locals; the synthetic `Option` bottom from
    // the framework supplies the "all locals" top for unreached inputs.)
    fn join(&mut self, other: &Self) -> bool {
        let mut changed = false;
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            let joined = *w & o;
            changed |= joined != *w;
            *w = joined;
        }
        changed
    }
}

struct DefiniteAssign<'f> {
    func: &'f Func,
}

impl DefiniteAssign<'_> {
    fn apply(&self, set: &mut LocalSet, instr: &Instr) {
        match *instr {
            Instr::SetL(l) | Instr::IncL(l, _) => set.insert(l),
            _ => {}
        }
    }
}

impl Analysis for DefiniteAssign<'_> {
    type State = Option<LocalSet>;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self) -> Option<LocalSet> {
        let mut s = LocalSet::empty(self.func.locals);
        for p in 0..self.func.params.min(self.func.locals) {
            s.insert(p);
        }
        Some(s)
    }

    fn bottom(&self) -> Option<LocalSet> {
        None
    }

    fn transfer(&self, cfg: &Cfg, b: BlockId, state: &Option<LocalSet>) -> Option<LocalSet> {
        let mut s = state.clone()?;
        let block = cfg.block(b);
        for i in block.start..block.end {
            self.apply(&mut s, &self.func.code[i as usize]);
        }
        Some(s)
    }
}

/// A read of a local that some path reaches before any write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UseBeforeAssign {
    /// Instruction index of the read.
    pub at: u32,
    /// The local read.
    pub local: Local,
}

/// Finds every reachable read of a local that is not definitely assigned.
pub fn use_before_assign(func: &Func, cfg: &Cfg) -> Vec<UseBeforeAssign> {
    let analysis = DefiniteAssign { func };
    let results = solve(cfg, &analysis);
    let mut out = Vec::new();
    for (bi, entry) in results.input.iter().enumerate() {
        // Unreached blocks (None) can't read anything at runtime.
        let Some(entry) = entry else { continue };
        let mut set = entry.clone();
        let block = &cfg.blocks()[bi];
        for i in block.start..block.end {
            let instr = &func.code[i as usize];
            // IncL both reads and writes: the read happens first.
            if let Instr::GetL(l) | Instr::IncL(l, _) = *instr {
                if !set.contains(l) {
                    out.push(UseBeforeAssign { at: i, local: l });
                }
            }
            analysis.apply(&mut set, instr);
        }
    }
    out.sort_by_key(|u| u.at);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytecode::{FuncId, StrId, UnitId};

    fn func(params: u16, locals: u16, code: Vec<Instr>) -> Func {
        Func {
            id: FuncId::new(0),
            name: StrId::new(0),
            unit: UnitId::new(0),
            params,
            locals,
            class: None,
            code,
        }
    }

    #[test]
    fn params_start_assigned() {
        let f = func(1, 2, vec![Instr::GetL(0), Instr::Ret]);
        let cfg = Cfg::build(&f);
        assert!(use_before_assign(&f, &cfg).is_empty());
    }

    #[test]
    fn straight_line_read_before_write_flagged() {
        let f = func(0, 1, vec![Instr::GetL(0), Instr::Ret]);
        let cfg = Cfg::build(&f);
        assert_eq!(
            use_before_assign(&f, &cfg),
            vec![UseBeforeAssign { at: 0, local: 0 }]
        );
    }

    #[test]
    fn write_on_only_one_branch_is_not_definite() {
        // if (p0) { l1 = 1 }; return l1  — l1 unassigned on the else path.
        let f = func(
            1,
            2,
            vec![
                Instr::GetL(0), // 0 b0
                Instr::JmpZ(5), // 1 b0 -> b2
                Instr::Int(1),  // 2 b1
                Instr::SetL(1), // 3 b1
                Instr::Jmp(5),  // 4 b1 -> b2
                Instr::GetL(1), // 5 b2: flagged
                Instr::Ret,     // 6
            ],
        );
        let cfg = Cfg::build(&f);
        assert_eq!(
            use_before_assign(&f, &cfg),
            vec![UseBeforeAssign { at: 5, local: 1 }]
        );
    }

    #[test]
    fn write_on_both_branches_is_definite() {
        let f = func(
            1,
            2,
            vec![
                Instr::GetL(0), // 0 b0
                Instr::JmpZ(5), // 1 b0 -> b2
                Instr::Int(1),  // 2 b1
                Instr::SetL(1), // 3
                Instr::Jmp(7),  // 4 b1 -> b3
                Instr::Int(2),  // 5 b2
                Instr::SetL(1), // 6 (falls through)
                Instr::GetL(1), // 7 b3: fine
                Instr::Ret,     // 8
            ],
        );
        let cfg = Cfg::build(&f);
        assert!(use_before_assign(&f, &cfg).is_empty());
    }

    #[test]
    fn loop_carried_assignment_is_not_definite_on_first_iteration() {
        // while (p0) { use l1; l1 = 1 } — first iteration reads unassigned.
        let f = func(
            1,
            2,
            vec![
                Instr::GetL(0), // 0 b0
                Instr::JmpZ(7), // 1 b0 -> exit
                Instr::GetL(1), // 2 b1: flagged (first iteration)
                Instr::Pop,     // 3
                Instr::Int(1),  // 4
                Instr::SetL(1), // 5
                Instr::Jmp(0),  // 6 -> b0
                Instr::Ret,     // 7 b2 — pops the GetL(0)? no: JmpZ popped it.
            ],
        );
        // NB: stack discipline is not this test's concern.
        let cfg = Cfg::build(&f);
        let uses = use_before_assign(&f, &cfg);
        assert_eq!(uses, vec![UseBeforeAssign { at: 2, local: 1 }]);
    }

    #[test]
    fn inc_l_counts_as_read_then_write() {
        let f = func(
            0,
            1,
            vec![Instr::IncL(0, 1), Instr::Pop, Instr::IncL(0, 1), Instr::Ret],
        );
        let cfg = Cfg::build(&f);
        // Only the first IncL reads an unassigned local.
        assert_eq!(
            use_before_assign(&f, &cfg),
            vec![UseBeforeAssign { at: 0, local: 0 }]
        );
    }
}
