//! The profile linter: static checks of a profile package against a repo.
//!
//! The paper's reliability pipeline (§VI) catches bad packages with a
//! validation compile and smoke boots — a full consumer boot just to find
//! out the data is garbage. The linter answers a cheaper question first:
//! *can this profile possibly have been collected from this repo?* It
//! cross-checks every id against the repo tables, every counter against
//! the profile point that claims to have produced it, block counters
//! against Kirchhoff flow conservation, call arcs against the static call
//! graph and observed types against the type abstract interpretation.
//!
//! Severity is two-level: [`Severity::Error`] means the profile is
//! structurally wrong for this repo (dangling ids, phantom profile
//! points, stale counter shapes) — consuming it risks crashes or
//! nonsense layout decisions. [`Severity::Warning`] means the data is
//! merely suspicious (flow imbalance from a truncated collection window,
//! statically impossible type observations).

use std::collections::HashSet;

use bytecode::{Cfg, ClassId, FuncId, Instr, Repo, StrId, UnitId};
use jit::{CtxProfile, FuncProfile, TierProfile, PARAM_SITE};
use vm::ValueKind;

use crate::callgraph::CallGraph;
use crate::reach::reachable_blocks;
use crate::types::bin_operand_types;

/// How bad a diagnostic is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The profile cannot describe this repo; consuming it is unsafe.
    Error,
    /// The data is suspicious but structurally consumable.
    Warning,
}

/// Which check produced a diagnostic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// An id (function, class, string, unit) is out of range for the repo.
    DanglingId,
    /// Block counters don't match the function's current CFG shape/hashes.
    StaleCounts,
    /// Profile data attached to an instruction that can't produce it
    /// (branch counters on a non-branch, call targets on a non-call, ...).
    PhantomSite,
    /// A recorded call arc no static call site can produce.
    ImpossibleCallArc,
    /// Block counters violate flow conservation (Kirchhoff's law).
    FlowConservation,
    /// A counter claims an unreachable block executed.
    UnreachableCounter,
    /// An observed type the abstract interpretation proves impossible.
    TypeImpossible,
    /// A malformed order list (duplicates, non-own-layer properties).
    BadOrder,
}

impl Rule {
    /// Short stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Rule::DanglingId => "dangling-id",
            Rule::StaleCounts => "stale-counts",
            Rule::PhantomSite => "phantom-site",
            Rule::ImpossibleCallArc => "impossible-call-arc",
            Rule::FlowConservation => "flow-conservation",
            Rule::UnreachableCounter => "unreachable-counter",
            Rule::TypeImpossible => "type-impossible",
            Rule::BadOrder => "bad-order",
        }
    }
}

/// One finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// How bad it is.
    pub severity: Severity,
    /// Which check fired.
    pub rule: Rule,
    /// The function the finding is about, when there is one.
    pub func: Option<FuncId>,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(f, "{sev}[{}]", self.rule.name())?;
        if let Some(func) = self.func {
            write!(f, " func#{}", func.index())?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Which optional checks to run.
#[derive(Clone, Copy, Debug)]
pub struct LintOptions {
    /// Check block counters for flow conservation. The stale-profile
    /// repairer infers counts that satisfy this check by construction
    /// ([`crate::flow`]), so repaired profiles are held to the same
    /// standard as fresh ones.
    pub flow_conservation: bool,
    /// Cross-check observed types against the abstract interpretation.
    pub type_feasibility: bool,
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions {
            flow_conservation: true,
            type_feasibility: true,
        }
    }
}

/// Borrowed view of the profile parts of a package. The linter doesn't
/// depend on the package container type so `core` can lint both packages
/// and raw collector output.
#[derive(Clone, Copy, Debug)]
pub struct ProfileView<'a> {
    /// Tier-1 profile.
    pub tier: &'a TierProfile,
    /// Context-sensitive profile.
    pub ctx: &'a CtxProfile,
    /// Unit preload order.
    pub unit_order: &'a [UnitId],
    /// Physical property orders per class.
    pub prop_orders: &'a [(ClassId, Vec<StrId>)],
    /// Optimized-compile function order.
    pub func_order: &'a [FuncId],
}

/// Everything the linter found, errors first.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// All findings, sorted by severity then function.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// Whether nothing at all was found.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// The functions named by any error, deduplicated.
    pub fn flagged_funcs(&self) -> HashSet<FuncId> {
        self.errors().filter_map(|d| d.func).collect()
    }
}

/// Lints a profile against a repo with default [`LintOptions`].
pub fn lint_profile(repo: &Repo, view: &ProfileView<'_>) -> LintReport {
    lint_profile_with(repo, view, &LintOptions::default())
}

/// Whether `order` is a valid physical order for `class`'s own property
/// layer: every name is one of the class's own declared properties and no
/// name repeats. (Missing names are fine — the VM appends them in
/// declared order.)
pub fn is_own_layer_order(repo: &Repo, class: ClassId, order: &[StrId]) -> bool {
    let own: HashSet<StrId> = repo.class(class).props.iter().map(|p| p.name).collect();
    let mut seen = HashSet::new();
    order.iter().all(|s| own.contains(s) && seen.insert(*s))
}

struct Linter<'a> {
    repo: &'a Repo,
    opts: &'a LintOptions,
    graph: CallGraph,
    out: Vec<Diagnostic>,
}

impl Linter<'_> {
    fn push(&mut self, severity: Severity, rule: Rule, func: Option<FuncId>, message: String) {
        self.out.push(Diagnostic {
            severity,
            rule,
            func,
            message,
        });
    }

    fn error(&mut self, rule: Rule, func: Option<FuncId>, message: String) {
        self.push(Severity::Error, rule, func, message);
    }

    fn warn(&mut self, rule: Rule, func: Option<FuncId>, message: String) {
        self.push(Severity::Warning, rule, func, message);
    }

    fn func_ok(&self, f: FuncId) -> bool {
        f.index() < self.repo.funcs().len()
    }

    fn class_ok(&self, c: ClassId) -> bool {
        c.index() < self.repo.classes().len()
    }

    fn str_ok(&self, s: StrId) -> bool {
        s.index() < self.repo.string_count()
    }

    fn is_call_instr(&self, f: FuncId, at: u32) -> bool {
        let code = &self.repo.func(f).code;
        matches!(
            code.get(at as usize),
            Some(Instr::Call { .. } | Instr::CallMethod { .. })
        )
    }

    /// True when the stored counters can't belong to the function's
    /// current CFG (length or structural-hash mismatch).
    fn func_is_stale(&self, fid: FuncId, fp: &FuncProfile, cfg: &Cfg) -> bool {
        if fp.block_counts.len() != cfg.len() {
            return true;
        }
        if !fp.block_hashes.is_empty() {
            let current = cfg.block_hashes(self.repo.func(fid), self.repo);
            if fp.block_hashes != current {
                return true;
            }
        }
        false
    }

    fn lint_func_profile(&mut self, ctx: &CtxProfile, fid: FuncId, fp: &FuncProfile) {
        if !self.func_ok(fid) {
            self.error(
                Rule::DanglingId,
                Some(fid),
                format!(
                    "profile for function #{} but repo has {}",
                    fid.index(),
                    self.repo.funcs().len()
                ),
            );
            return;
        }
        let func = self.repo.func(fid);
        let cfg = Cfg::build(func);

        let stale = self.func_is_stale(fid, fp, &cfg);
        if stale {
            self.error(
                Rule::StaleCounts,
                Some(fid),
                format!(
                    "block counters ({} blocks) don't match the current CFG ({} blocks{})",
                    fp.block_counts.len(),
                    cfg.len(),
                    if fp.block_counts.len() == cfg.len() {
                        ", hashes differ"
                    } else {
                        ""
                    },
                ),
            );
        }

        // Call-target profiles: real call sites, possible callees.
        for (&site, targets) in &fp.call_targets {
            if !self.is_call_instr(fid, site) {
                self.error(
                    Rule::PhantomSite,
                    Some(fid),
                    format!("call-target profile at instr {site}, which is not a call"),
                );
                continue;
            }
            for &callee in targets.keys() {
                if !self.func_ok(callee) {
                    self.error(
                        Rule::DanglingId,
                        Some(fid),
                        format!(
                            "call site {site} records dangling callee #{}",
                            callee.index()
                        ),
                    );
                } else if !self.graph.can_call(fid, site, callee) {
                    self.error(
                        Rule::ImpossibleCallArc,
                        Some(fid),
                        format!(
                            "call site {site} records callee #{} that the site cannot dispatch to",
                            callee.index()
                        ),
                    );
                }
            }
        }

        // Type observations: parameter slots or binary-operator operands.
        let static_types =
            (self.opts.type_feasibility && !stale).then(|| bin_operand_types(func, &cfg));
        for (&(at, slot), dist) in &fp.types {
            if at == PARAM_SITE {
                if slot as u16 >= func.params || slot >= 8 {
                    self.error(
                        Rule::PhantomSite,
                        Some(fid),
                        format!(
                            "type profile for parameter {slot} of a {}-param function",
                            func.params
                        ),
                    );
                }
                continue;
            }
            let is_bin = matches!(func.code.get(at as usize), Some(Instr::Bin(_)));
            if !is_bin || slot > 1 {
                self.error(
                    Rule::PhantomSite,
                    Some(fid),
                    format!("type profile at (instr {at}, slot {slot}), which is not a binary-op operand"),
                );
                continue;
            }
            if let Some(static_types) = &static_types {
                if let Some(&possible) = static_types.get(&(at, slot)) {
                    for kind in ValueKind::ALL {
                        if dist.counts()[kind.index()] > 0 && !possible.contains(kind) {
                            self.warn(
                                Rule::TypeImpossible,
                                Some(fid),
                                format!(
                                    "observed {kind:?} at (instr {at}, slot {slot}) where only {possible:?} can flow"
                                ),
                            );
                        }
                    }
                }
            }
        }

        // Property-access profiles: real property instructions, live classes.
        for (&site, classes) in &fp.prop_site_classes {
            let is_prop = matches!(
                func.code.get(site as usize),
                Some(Instr::GetProp(_) | Instr::SetProp(_))
            );
            if !is_prop {
                self.error(
                    Rule::PhantomSite,
                    Some(fid),
                    format!("property profile at instr {site}, which is not a property access"),
                );
            }
            for &class in classes.keys() {
                if !self.class_ok(class) {
                    self.error(
                        Rule::DanglingId,
                        Some(fid),
                        format!(
                            "property site {site} records dangling class #{}",
                            class.index()
                        ),
                    );
                }
            }
        }

        // Counters on provably dead blocks.
        if !stale {
            let reachable = reachable_blocks(&cfg);
            for (b, (&count, &r)) in fp.block_counts.iter().zip(&reachable).enumerate() {
                if count > 0 && !r {
                    self.error(
                        Rule::UnreachableCounter,
                        Some(fid),
                        format!("block {b} is unreachable but counted {count} executions"),
                    );
                }
            }
        }

        if self.opts.flow_conservation && !stale {
            self.check_flow(ctx, fid, fp, &cfg);
        }
    }

    /// Kirchhoff check: each block's execution count must equal the flow
    /// into it (function entries for b0, predecessor edge counts
    /// elsewhere). Edge counts are derived from the context profile's
    /// branch counters; blocks fed by a branch that was never recorded are
    /// skipped as indeterminate rather than flagged.
    fn check_flow(&mut self, ctx: &CtxProfile, fid: FuncId, fp: &FuncProfile, cfg: &Cfg) {
        let n = cfg.len();
        let mut inflow = vec![0u64; n];
        let mut indeterminate = vec![false; n];
        inflow[0] = inflow[0].saturating_add(fp.enter_count);
        for (bi, block) in cfg.blocks().iter().enumerate() {
            let count = fp.block_counts[bi];
            match (block.taken, block.fallthrough) {
                (Some(t), Some(ft)) => {
                    let at = block.end - 1;
                    let bc = ctx.aggregate_branch(fid, at);
                    if bc.total() == 0 {
                        // No branch data: can't split this block's outflow.
                        if count > 0 {
                            indeterminate[t.index()] = true;
                            indeterminate[ft.index()] = true;
                        }
                    } else if bc.total() != count {
                        self.error(
                            Rule::FlowConservation,
                            Some(fid),
                            format!(
                                "branch at instr {at} recorded {} outcomes but its block executed {count} times",
                                bc.total()
                            ),
                        );
                        indeterminate[t.index()] = true;
                        indeterminate[ft.index()] = true;
                    } else {
                        inflow[t.index()] = inflow[t.index()].saturating_add(bc.taken);
                        inflow[ft.index()] = inflow[ft.index()].saturating_add(bc.not_taken);
                    }
                }
                (Some(s), None) | (None, Some(s)) => {
                    inflow[s.index()] = inflow[s.index()].saturating_add(count);
                }
                (None, None) => {}
            }
        }
        for b in 0..n {
            if !indeterminate[b] && inflow[b] != fp.block_counts[b] {
                self.error(
                    Rule::FlowConservation,
                    Some(fid),
                    format!(
                        "block {b} executed {} times but flow in is {}",
                        fp.block_counts[b], inflow[b]
                    ),
                );
            }
        }
    }

    fn lint_ctx(&mut self, ctx: &CtxProfile) {
        for &(ictx, fid, at) in ctx.branches.keys() {
            if !self.func_ok(fid) {
                self.error(
                    Rule::DanglingId,
                    Some(fid),
                    format!("branch counters for dangling function #{}", fid.index()),
                );
                continue;
            }
            let code = &self.repo.func(fid).code;
            if !matches!(
                code.get(at as usize),
                Some(Instr::JmpZ(_) | Instr::JmpNZ(_))
            ) {
                self.error(
                    Rule::PhantomSite,
                    Some(fid),
                    format!("branch counters at instr {at}, which is not a conditional branch"),
                );
            }
            self.lint_inline_ctx(ictx);
        }
        for &(ictx, callee) in ctx.entries.keys() {
            if !self.func_ok(callee) {
                self.error(
                    Rule::DanglingId,
                    Some(callee),
                    format!("entry counters for dangling function #{}", callee.index()),
                );
                continue;
            }
            if self.lint_inline_ctx(ictx) {
                if let Some((caller, site)) = ictx {
                    if !self.graph.can_call(caller, site, callee) {
                        self.error(
                            Rule::ImpossibleCallArc,
                            Some(callee),
                            format!(
                                "entry arc from (func#{}, instr {site}) which cannot dispatch to func#{}",
                                caller.index(),
                                callee.index()
                            ),
                        );
                    }
                }
            }
        }
    }

    /// Checks an inline-context key; returns whether it was structurally
    /// valid (so arc checks can build on it).
    fn lint_inline_ctx(&mut self, ictx: jit::InlineCtx) -> bool {
        let Some((caller, site)) = ictx else {
            return true;
        };
        if !self.func_ok(caller) {
            self.error(
                Rule::DanglingId,
                Some(caller),
                format!("inline context names dangling caller #{}", caller.index()),
            );
            return false;
        }
        if !self.is_call_instr(caller, site) {
            self.error(
                Rule::PhantomSite,
                Some(caller),
                format!(
                    "inline context site (func#{}, instr {site}) is not a call",
                    caller.index()
                ),
            );
            return false;
        }
        true
    }

    fn lint_prop_tables(&mut self, tier: &TierProfile) {
        for &(class, prop) in tier.prop_counts.keys() {
            if !self.class_ok(class) {
                self.error(
                    Rule::DanglingId,
                    None,
                    format!("property counter for dangling class #{}", class.index()),
                );
            } else if !self.str_ok(prop) {
                self.error(
                    Rule::DanglingId,
                    None,
                    format!("property counter for dangling name str#{}", prop.index()),
                );
            }
        }
        for &(class, a, b) in tier.prop_pairs.keys() {
            if !self.class_ok(class) || !self.str_ok(a) || !self.str_ok(b) {
                self.error(
                    Rule::DanglingId,
                    None,
                    format!(
                        "property pair counter with dangling ids (class #{})",
                        class.index()
                    ),
                );
            }
        }
    }

    fn lint_orders(&mut self, view: &ProfileView<'_>) {
        let mut seen_units = HashSet::new();
        for &u in view.unit_order {
            if u.index() >= self.repo.units().len() {
                self.error(
                    Rule::DanglingId,
                    None,
                    format!("unit order names dangling unit #{}", u.index()),
                );
            } else if !seen_units.insert(u) {
                self.error(
                    Rule::BadOrder,
                    None,
                    format!("unit order repeats unit #{}", u.index()),
                );
            }
        }
        let mut seen_funcs = HashSet::new();
        for &f in view.func_order {
            if !self.func_ok(f) {
                self.error(
                    Rule::DanglingId,
                    Some(f),
                    format!("function order names dangling function #{}", f.index()),
                );
            } else if !seen_funcs.insert(f) {
                self.error(
                    Rule::BadOrder,
                    Some(f),
                    format!("function order repeats function #{}", f.index()),
                );
            }
        }
        let mut seen_classes = HashSet::new();
        for (class, order) in view.prop_orders {
            if !self.class_ok(*class) {
                self.error(
                    Rule::DanglingId,
                    None,
                    format!("property order for dangling class #{}", class.index()),
                );
                continue;
            }
            if !seen_classes.insert(*class) {
                self.error(
                    Rule::BadOrder,
                    None,
                    format!("duplicate property order for class #{}", class.index()),
                );
            }
            if !is_own_layer_order(self.repo, *class, order) {
                self.error(
                    Rule::BadOrder,
                    None,
                    format!(
                        "property order for class #{} is not a permutation of its own properties",
                        class.index()
                    ),
                );
            }
        }
    }
}

/// Lints a profile against a repo.
///
/// The repo is assumed to pass [`bytecode::verify_repo`]; the linter
/// checks the *profile*, not the code.
pub fn lint_profile_with(repo: &Repo, view: &ProfileView<'_>, opts: &LintOptions) -> LintReport {
    let mut l = Linter {
        repo,
        opts,
        graph: CallGraph::build(repo),
        out: Vec::new(),
    };

    // Deterministic order regardless of hash-map iteration.
    let mut funcs: Vec<(&FuncId, &FuncProfile)> = view.tier.funcs.iter().collect();
    funcs.sort_by_key(|(f, _)| f.index());
    for (&fid, fp) in funcs {
        l.lint_func_profile(view.ctx, fid, fp);
    }
    l.lint_ctx(view.ctx);
    l.lint_prop_tables(view.tier);
    l.lint_orders(view);

    let mut diagnostics = l.out;
    diagnostics.sort_by(|a, b| {
        (a.severity, a.rule, a.func.map(|f| f.index()), &a.message).cmp(&(
            b.severity,
            b.rule,
            b.func.map(|f| f.index()),
            &b.message,
        ))
    });
    diagnostics.dedup();
    LintReport { diagnostics }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytecode::{BinOp, FuncBuilder, RepoBuilder};
    use jit::ProfileCollector;
    use vm::{Value, Vm};

    /// f(n) loops calling g(i % 2); g branches on its argument.
    fn sample_repo() -> Repo {
        let mut b = RepoBuilder::new();
        let u = b.declare_unit("p.hl");
        let mut g = FuncBuilder::new("g", 1);
        let zero = g.new_label();
        g.emit(Instr::GetL(0));
        g.emit_jmp_z(zero);
        g.emit(Instr::Int(1));
        g.emit(Instr::Ret);
        g.bind(zero);
        g.emit(Instr::Int(0));
        g.emit(Instr::Ret);
        let gid = b.define_func(u, g);
        let mut f = FuncBuilder::new("f", 1);
        let i = f.new_local();
        let top = f.new_label();
        let out = f.new_label();
        f.emit(Instr::Int(0));
        f.emit(Instr::SetL(i));
        f.bind(top);
        f.emit(Instr::GetL(i));
        f.emit(Instr::GetL(0));
        f.emit(Instr::Bin(BinOp::Lt));
        f.emit_jmp_z(out);
        f.emit(Instr::GetL(i));
        f.emit(Instr::Int(2));
        f.emit(Instr::Bin(BinOp::Mod));
        f.emit_raw(Instr::Call { func: gid, argc: 1 });
        f.emit(Instr::Pop);
        f.emit(Instr::IncL(i, 1));
        f.emit(Instr::Pop);
        f.emit_jmp(top);
        f.bind(out);
        f.emit(Instr::Null);
        f.emit(Instr::Ret);
        b.define_func(u, f);
        b.finish()
    }

    fn collect(repo: &Repo, n: i64) -> (TierProfile, CtxProfile) {
        let f = repo.func_by_name("f").unwrap().id;
        let mut vm = Vm::new(repo);
        let mut col = ProfileCollector::new(repo);
        vm.call_observed(f, &[Value::Int(n)], &mut col).unwrap();
        col.end_request();
        (col.tier, col.ctx)
    }

    fn view<'a>(tier: &'a TierProfile, ctx: &'a CtxProfile) -> ProfileView<'a> {
        ProfileView {
            tier,
            ctx,
            unit_order: &[],
            prop_orders: &[],
            func_order: &[],
        }
    }

    #[test]
    fn fresh_profile_lints_clean() {
        let repo = sample_repo();
        let (tier, ctx) = collect(&repo, 10);
        let report = lint_profile(&repo, &view(&tier, &ctx));
        assert!(
            report.is_clean(),
            "fresh profile flagged: {:?}",
            report.diagnostics
        );
    }

    #[test]
    fn dangling_func_id_is_an_error() {
        let repo = sample_repo();
        let (mut tier, ctx) = collect(&repo, 10);
        let fp = tier.funcs.values().next().unwrap().clone();
        tier.funcs.insert(FuncId::new(999), fp);
        let report = lint_profile(&repo, &view(&tier, &ctx));
        assert!(report.errors().any(|d| d.rule == Rule::DanglingId));
    }

    #[test]
    fn dangling_callee_is_an_error() {
        let repo = sample_repo();
        let (mut tier, ctx) = collect(&repo, 10);
        let f = repo.func_by_name("f").unwrap().id;
        let fp = tier.funcs.get_mut(&f).unwrap();
        let site = *fp.call_targets.keys().next().unwrap();
        fp.call_targets
            .get_mut(&site)
            .unwrap()
            .insert(FuncId::new(777), 3);
        let report = lint_profile(&repo, &view(&tier, &ctx));
        assert!(report
            .errors()
            .any(|d| d.rule == Rule::DanglingId && d.func == Some(f)));
    }

    #[test]
    fn impossible_call_arc_is_an_error() {
        let repo = sample_repo();
        let (mut tier, ctx) = collect(&repo, 10);
        let f = repo.func_by_name("f").unwrap().id;
        let fp = tier.funcs.get_mut(&f).unwrap();
        let site = *fp.call_targets.keys().next().unwrap();
        // f itself is a real function, but the site statically calls g.
        fp.call_targets.get_mut(&site).unwrap().insert(f, 3);
        let report = lint_profile(&repo, &view(&tier, &ctx));
        assert!(report.errors().any(|d| d.rule == Rule::ImpossibleCallArc));
    }

    #[test]
    fn flow_conservation_violation_is_an_error() {
        let repo = sample_repo();
        let (mut tier, ctx) = collect(&repo, 10);
        let f = repo.func_by_name("f").unwrap().id;
        let fp = tier.funcs.get_mut(&f).unwrap();
        // Perturb one interior block counter.
        let hot = fp
            .block_counts
            .iter()
            .position(|&c| c > 1)
            .expect("loop body executed");
        fp.block_counts[hot] += 5;
        let report = lint_profile(&repo, &view(&tier, &ctx));
        assert!(
            report.errors().any(|d| d.rule == Rule::FlowConservation),
            "got: {:?}",
            report.diagnostics
        );
        // And the check can be disabled.
        let lenient = lint_profile_with(
            &repo,
            &view(&tier, &ctx),
            &LintOptions {
                flow_conservation: false,
                ..Default::default()
            },
        );
        assert!(!lenient
            .diagnostics
            .iter()
            .any(|d| d.rule == Rule::FlowConservation));
    }

    #[test]
    fn stale_counter_shape_is_an_error() {
        let repo = sample_repo();
        let (mut tier, ctx) = collect(&repo, 10);
        let f = repo.func_by_name("f").unwrap().id;
        let fp = tier.funcs.get_mut(&f).unwrap();
        fp.block_counts.truncate(fp.block_counts.len() - 1);
        fp.block_hashes.truncate(fp.block_hashes.len() - 1);
        let report = lint_profile(&repo, &view(&tier, &ctx));
        assert!(report
            .errors()
            .any(|d| d.rule == Rule::StaleCounts && d.func == Some(f)));
    }

    #[test]
    fn stale_hashes_detected_even_with_matching_length() {
        let repo = sample_repo();
        let (mut tier, ctx) = collect(&repo, 10);
        let f = repo.func_by_name("f").unwrap().id;
        let fp = tier.funcs.get_mut(&f).unwrap();
        fp.block_hashes[0] ^= 0xdead_beef;
        let report = lint_profile(&repo, &view(&tier, &ctx));
        assert!(report
            .errors()
            .any(|d| d.rule == Rule::StaleCounts && d.func == Some(f)));
    }

    #[test]
    fn phantom_branch_site_is_an_error() {
        let repo = sample_repo();
        let (tier, mut ctx) = collect(&repo, 10);
        let f = repo.func_by_name("f").unwrap().id;
        // Instr 0 of f is Int(0), not a conditional branch.
        ctx.branches.insert(
            (None, f, 0),
            jit::BranchCount {
                taken: 1,
                not_taken: 1,
            },
        );
        let report = lint_profile_with(
            &repo,
            &view(&tier, &ctx),
            &LintOptions {
                flow_conservation: false,
                ..Default::default()
            },
        );
        assert!(report.errors().any(|d| d.rule == Rule::PhantomSite));
    }

    #[test]
    fn impossible_type_observation_is_a_warning() {
        let repo = sample_repo();
        let (mut tier, ctx) = collect(&repo, 10);
        let f = repo.func_by_name("f").unwrap().id;
        let fp = tier.funcs.get_mut(&f).unwrap();
        // The Mod at instr 8 sees only ints statically (i and the literal 2).
        fp.types
            .entry((8, 1))
            .or_default()
            .add_raw(ValueKind::Str, 4);
        let report = lint_profile(&repo, &view(&tier, &ctx));
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.rule == Rule::TypeImpossible && d.severity == Severity::Warning));
    }

    #[test]
    fn bad_orders_are_flagged() {
        let repo = sample_repo();
        let (tier, ctx) = collect(&repo, 10);
        let f = repo.func_by_name("f").unwrap().id;
        let report = lint_profile(
            &repo,
            &ProfileView {
                tier: &tier,
                ctx: &ctx,
                unit_order: &[UnitId::new(0), UnitId::new(0), UnitId::new(9)],
                prop_orders: &[],
                func_order: &[f, f],
            },
        );
        assert!(report.errors().any(|d| d.rule == Rule::BadOrder));
        assert!(report.errors().any(|d| d.rule == Rule::DanglingId));
        assert!(report.error_count() >= 3);
    }

    #[test]
    fn unreachable_counter_is_an_error() {
        // Function with a dead block; hand-build a profile claiming it ran.
        let mut b = RepoBuilder::new();
        let u = b.declare_unit("d.hl");
        let mut f = FuncBuilder::new("dead", 0);
        let end = f.new_label();
        f.emit(Instr::Null);
        f.emit_jmp(end);
        f.emit(Instr::Int(1)); // dead block
        f.emit(Instr::Pop);
        f.bind(end);
        f.emit(Instr::Ret);
        let fid = b.define_func(u, f);
        let repo = b.finish();
        let cfg = Cfg::build(repo.func(fid));
        let mut fp = FuncProfile {
            enter_count: 1,
            block_counts: vec![0; cfg.len()],
            block_hashes: cfg.block_hashes(repo.func(fid), &repo),
            ..Default::default()
        };
        fp.block_counts[0] = 1;
        fp.block_counts[1] = 7; // the dead block
        fp.block_counts[cfg.len() - 1] = 1;
        let mut tier = TierProfile::default();
        tier.funcs.insert(fid, fp);
        let ctx = CtxProfile::default();
        let report = lint_profile_with(
            &repo,
            &view(&tier, &ctx),
            &LintOptions {
                flow_conservation: false,
                ..Default::default()
            },
        );
        assert!(report.errors().any(|d| d.rule == Rule::UnreachableCounter));
    }

    #[test]
    fn diagnostics_render_and_sort() {
        let repo = sample_repo();
        let (mut tier, mut ctx) = collect(&repo, 10);
        let f = repo.func_by_name("f").unwrap().id;
        tier.funcs.get_mut(&f).unwrap().block_counts[1] += 1;
        ctx.branches
            .insert((None, FuncId::new(500), 0), Default::default());
        let report = lint_profile(&repo, &view(&tier, &ctx));
        assert!(!report.is_clean());
        // Errors come before warnings, and Display is stable.
        let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
        assert!(rendered.iter().any(|s| s.starts_with("error[")));
        let first_warning = report
            .diagnostics
            .iter()
            .position(|d| d.severity == Severity::Warning)
            .unwrap_or(report.diagnostics.len());
        assert!(report.diagnostics[..first_warning]
            .iter()
            .all(|d| d.severity == Severity::Error));
    }
}
