//! The whole-repo static call graph.
//!
//! Sites come in three kinds mirroring the call instructions: static
//! calls name their callee directly; method calls can reach any function
//! registered as an implementation of that method name on some class
//! (dynamic dispatch — the profile's call-target counters pick among
//! these); builtin calls never reach repo functions. The linter uses the
//! graph's over-approximation to reject call arcs no site can produce.

use std::collections::{HashMap, HashSet};

use bytecode::{Builtin, FuncId, Instr, Repo, StrId};

/// What a call site can dispatch to, statically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CallSiteKind {
    /// `Call`: exactly one callee.
    Static(FuncId),
    /// `CallMethod`: any implementation of the method name.
    Method(StrId),
    /// `CallBuiltin`: never a repo function.
    Builtin(Builtin),
}

/// One call instruction in a function's code.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CallSite {
    /// Instruction index of the call.
    pub at: u32,
    /// Static dispatch information.
    pub kind: CallSiteKind,
}

/// Call sites and possible targets for every function in a repo.
#[derive(Clone, Debug, Default)]
pub struct CallGraph {
    sites: HashMap<FuncId, Vec<CallSite>>,
    /// Method name → every function registered under it on some class.
    method_impls: HashMap<StrId, Vec<FuncId>>,
}

impl CallGraph {
    /// Builds the graph by scanning every function and class table.
    pub fn build(repo: &Repo) -> CallGraph {
        let mut method_impls: HashMap<StrId, Vec<FuncId>> = HashMap::new();
        for class in repo.classes() {
            for &(name, fid) in &class.methods {
                let impls = method_impls.entry(name).or_default();
                if !impls.contains(&fid) {
                    impls.push(fid);
                }
            }
        }
        let mut sites = HashMap::new();
        for func in repo.funcs() {
            let mut list = Vec::new();
            for (i, instr) in func.code.iter().enumerate() {
                let kind = match *instr {
                    Instr::Call { func: callee, .. } => CallSiteKind::Static(callee),
                    Instr::CallMethod { name, .. } => CallSiteKind::Method(name),
                    Instr::CallBuiltin { builtin, .. } => CallSiteKind::Builtin(builtin),
                    _ => continue,
                };
                list.push(CallSite { at: i as u32, kind });
            }
            if !list.is_empty() {
                sites.insert(func.id, list);
            }
        }
        CallGraph {
            sites,
            method_impls,
        }
    }

    /// The call sites of a function, in code order.
    pub fn sites(&self, func: FuncId) -> &[CallSite] {
        self.sites.get(&func).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The site at an exact instruction index, if that instruction calls.
    pub fn site_at(&self, func: FuncId, at: u32) -> Option<CallSite> {
        self.sites(func).iter().copied().find(|s| s.at == at)
    }

    /// Every repo function the site at `(func, at)` can dispatch to.
    /// Empty for builtins and non-call instructions.
    pub fn possible_targets(&self, func: FuncId, at: u32) -> Vec<FuncId> {
        match self.site_at(func, at).map(|s| s.kind) {
            Some(CallSiteKind::Static(callee)) => vec![callee],
            Some(CallSiteKind::Method(name)) => {
                self.method_impls.get(&name).cloned().unwrap_or_default()
            }
            Some(CallSiteKind::Builtin(_)) | None => Vec::new(),
        }
    }

    /// Whether the site at `(func, at)` can dispatch to `callee`.
    pub fn can_call(&self, func: FuncId, at: u32, callee: FuncId) -> bool {
        match self.site_at(func, at).map(|s| s.kind) {
            Some(CallSiteKind::Static(c)) => c == callee,
            Some(CallSiteKind::Method(name)) => self
                .method_impls
                .get(&name)
                .is_some_and(|v| v.contains(&callee)),
            Some(CallSiteKind::Builtin(_)) | None => false,
        }
    }

    /// All repo functions a function can call, from any of its sites.
    pub fn callees(&self, func: FuncId) -> Vec<FuncId> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        for site in self.sites(func) {
            for t in self.possible_targets(func, site.at) {
                if seen.insert(t) {
                    out.push(t);
                }
            }
        }
        out
    }

    /// The set of functions transitively callable from `roots`.
    pub fn reachable_from(&self, roots: &[FuncId]) -> HashSet<FuncId> {
        let mut seen: HashSet<FuncId> = roots.iter().copied().collect();
        let mut work: Vec<FuncId> = roots.to_vec();
        while let Some(f) = work.pop() {
            for callee in self.callees(f) {
                if seen.insert(callee) {
                    work.push(callee);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytecode::{FuncBuilder, RepoBuilder};

    /// helper() and two classes both declaring method "run"; main calls
    /// helper statically and "run" dynamically.
    fn sample_repo() -> Repo {
        let mut b = RepoBuilder::new();
        let unit = b.declare_unit("u.hack");
        let run = b.intern("run");

        let mut helper = FuncBuilder::new("helper", 0);
        helper.emit(Instr::Null);
        helper.emit(Instr::Ret);
        let helper = b.define_func(unit, helper);

        let a = b.declare_class(unit, "A", None, vec![]);
        let mut a_run = FuncBuilder::new("A::run", 0);
        a_run.emit(Instr::Null);
        a_run.emit(Instr::Ret);
        let a_run = b.define_method(unit, a, a_run);

        let c = b.declare_class(unit, "C", None, vec![]);
        let mut c_run = FuncBuilder::new("C::run", 0);
        c_run.emit(Instr::Null);
        c_run.emit(Instr::Ret);
        let c_run = b.define_method(unit, c, c_run);

        let mut main = FuncBuilder::new("main", 0);
        main.emit(Instr::Call {
            func: helper,
            argc: 0,
        }); // 0
        main.emit(Instr::Pop); // 1
        main.emit(Instr::NewObj(a)); // 2
        main.emit(Instr::CallMethod { name: run, argc: 0 }); // 3
        main.emit(Instr::Pop); // 4
        main.emit(Instr::Null); // 5
        main.emit(Instr::CallBuiltin {
            builtin: Builtin::Print,
            argc: 1,
        }); // 6
        main.emit(Instr::Ret); // 7
        b.define_func(unit, main);

        let repo = b.finish();
        // Sanity: ids are stable for the assertions below.
        assert_eq!(helper.index(), 0);
        assert_eq!(a_run.index(), 1);
        assert_eq!(c_run.index(), 2);
        repo
    }

    #[test]
    fn static_sites_have_one_target() {
        let repo = sample_repo();
        let g = CallGraph::build(&repo);
        let main = repo.func_by_name("main").unwrap().id;
        assert_eq!(g.possible_targets(main, 0), vec![FuncId::new(0)]);
        assert!(g.can_call(main, 0, FuncId::new(0)));
        assert!(!g.can_call(main, 0, FuncId::new(1)));
    }

    #[test]
    fn method_sites_reach_every_implementation() {
        let repo = sample_repo();
        let g = CallGraph::build(&repo);
        let main = repo.func_by_name("main").unwrap().id;
        let targets = g.possible_targets(main, 3);
        assert_eq!(targets.len(), 2);
        assert!(targets.contains(&FuncId::new(1)));
        assert!(targets.contains(&FuncId::new(2)));
        // helper is not a "run" implementation.
        assert!(!g.can_call(main, 3, FuncId::new(0)));
    }

    #[test]
    fn builtin_sites_and_non_calls_have_no_targets() {
        let repo = sample_repo();
        let g = CallGraph::build(&repo);
        let main = repo.func_by_name("main").unwrap().id;
        assert!(g.possible_targets(main, 6).is_empty());
        assert!(g.possible_targets(main, 1).is_empty(), "Pop is not a call");
        assert!(!g.can_call(main, 1, FuncId::new(0)));
    }

    #[test]
    fn reachability_is_transitive() {
        let repo = sample_repo();
        let g = CallGraph::build(&repo);
        let main = repo.func_by_name("main").unwrap().id;
        let reach = g.reachable_from(&[main]);
        // main + helper + both run impls.
        assert_eq!(reach.len(), 4);
        let helper_only = g.reachable_from(&[FuncId::new(0)]);
        assert_eq!(helper_only.len(), 1);
    }
}
