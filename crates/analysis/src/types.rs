//! Type-lattice abstract interpretation of the operand stack and locals.
//!
//! Each abstract value is the *set* of [`ValueKind`]s it might hold at
//! runtime — a bitmask of the 8 kinds, so the lattice is the powerset with
//! union as join. The analysis is sound but deliberately coarse: calls and
//! container reads produce ⊤ (any kind). Its use in the linter is the
//! contrapositive: if a profile package claims a type was *observed* at an
//! operand slot where the static set excludes that kind, the profile can't
//! have come from this code.

use std::collections::HashMap;

use bytecode::{BinOp, BlockId, Builtin, Cfg, Func, Instr, UnOp};
use vm::ValueKind;

use crate::dataflow::{solve, Analysis, DataflowResults, Direction, JoinSemiLattice};

/// A set of possible [`ValueKind`]s, as a bitmask over `ValueKind::ALL`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct TypeSet(pub u8);

impl TypeSet {
    /// The empty set (no kind possible — dead value).
    pub const EMPTY: TypeSet = TypeSet(0);
    /// Every kind possible.
    pub const ANY: TypeSet = TypeSet(((1u16 << ValueKind::COUNT) - 1) as u8);

    /// The singleton set for one kind.
    pub fn just(k: ValueKind) -> TypeSet {
        TypeSet(1 << k.index())
    }

    /// Whether the set contains a kind.
    pub fn contains(self, k: ValueKind) -> bool {
        self.0 >> k.index() & 1 == 1
    }

    /// Set union.
    pub fn union(self, other: TypeSet) -> TypeSet {
        TypeSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersect(self, other: TypeSet) -> TypeSet {
        TypeSet(self.0 & other.0)
    }

    /// Whether no kind is possible.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Debug for TypeSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if *self == TypeSet::ANY {
            return write!(f, "any");
        }
        if self.is_empty() {
            return write!(f, "none");
        }
        let mut first = true;
        for k in ValueKind::ALL {
            if self.contains(k) {
                if !first {
                    write!(f, "|")?;
                }
                write!(f, "{k:?}")?;
                first = false;
            }
        }
        Ok(())
    }
}

const INT_OR_FLOAT: TypeSet = TypeSet(1 << 2 | 1 << 3);
const VEC_OR_DICT: TypeSet = TypeSet(1 << 5 | 1 << 6);

/// Abstract state: a type set per local and per operand-stack slot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TypeState {
    /// Per-local type sets, indexed by local number.
    pub locals: Vec<TypeSet>,
    /// The abstract operand stack, bottom first.
    pub stack: Vec<TypeSet>,
}

impl TypeState {
    fn entry(func: &Func) -> TypeState {
        let mut locals = vec![TypeSet::just(ValueKind::Null); func.locals as usize];
        // Parameters arrive with caller-controlled values.
        for l in locals.iter_mut().take(func.params as usize) {
            *l = TypeSet::ANY;
        }
        TypeState {
            locals,
            stack: Vec::new(),
        }
    }

    fn push(&mut self, t: TypeSet) {
        self.stack.push(t);
    }

    /// Defensive pop: verified code never underflows, but the analysis
    /// must not panic on arbitrary input.
    fn pop(&mut self) -> TypeSet {
        self.stack.pop().unwrap_or(TypeSet::ANY)
    }

    fn popn(&mut self, n: usize) {
        for _ in 0..n {
            self.pop();
        }
    }

    fn local(&self, l: u16) -> TypeSet {
        self.locals.get(l as usize).copied().unwrap_or(TypeSet::ANY)
    }

    fn set_local(&mut self, l: u16, t: TypeSet) {
        if let Some(slot) = self.locals.get_mut(l as usize) {
            *slot = t;
        }
    }
}

impl JoinSemiLattice for TypeState {
    fn join(&mut self, other: &Self) -> bool {
        let mut changed = false;
        for (a, b) in self.locals.iter_mut().zip(&other.locals) {
            let j = a.union(*b);
            changed |= j != *a;
            *a = j;
        }
        // Verified code joins stacks of equal depth; on malformed input we
        // join the common prefix and keep the shorter depth (sound: excess
        // slots can't be popped on all paths anyway).
        if self.stack.len() > other.stack.len() {
            self.stack.truncate(other.stack.len());
            changed = true;
        }
        for (a, b) in self.stack.iter_mut().zip(&other.stack) {
            let j = a.union(*b);
            changed |= j != *a;
            *a = j;
        }
        changed
    }
}

fn builtin_result(b: Builtin) -> TypeSet {
    match b {
        Builtin::Print => TypeSet::just(ValueKind::Null),
        Builtin::Strlen | Builtin::Count | Builtin::ToInt | Builtin::HashVal => {
            TypeSet::just(ValueKind::Int)
        }
        Builtin::Keys => TypeSet::just(ValueKind::Vec),
        Builtin::Abs => INT_OR_FLOAT,
        Builtin::IsInt | Builtin::IsStr | Builtin::IsNull => TypeSet::just(ValueKind::Bool),
        Builtin::ToStr | Builtin::Substr | Builtin::ClassName => TypeSet::just(ValueKind::Str),
        Builtin::Push => TypeSet::just(ValueKind::Vec),
        Builtin::Min | Builtin::Max | Builtin::IdxOr => TypeSet::ANY,
    }
}

fn bin_result(op: BinOp) -> TypeSet {
    if op.is_comparison() {
        return TypeSet::just(ValueKind::Bool);
    }
    match op {
        BinOp::Concat => TypeSet::just(ValueKind::Str),
        BinOp::BitAnd | BinOp::BitOr | BinOp::BitXor | BinOp::Shl | BinOp::Shr => {
            TypeSet::just(ValueKind::Int)
        }
        // Add/Sub/Mul/Div/Mod: numeric, float on overflow or division.
        _ => INT_OR_FLOAT,
    }
}

fn apply(state: &mut TypeState, instr: &Instr) {
    match *instr {
        Instr::Null => state.push(TypeSet::just(ValueKind::Null)),
        Instr::True | Instr::False => state.push(TypeSet::just(ValueKind::Bool)),
        Instr::Int(_) => state.push(TypeSet::just(ValueKind::Int)),
        Instr::Double(_) => state.push(TypeSet::just(ValueKind::Float)),
        Instr::Str(_) => state.push(TypeSet::just(ValueKind::Str)),
        Instr::LitArr(_) => state.push(VEC_OR_DICT),
        Instr::Pop => {
            state.pop();
        }
        Instr::Dup => {
            let t = state.pop();
            state.push(t);
            state.push(t);
        }
        Instr::GetL(l) => {
            let t = state.local(l);
            state.push(t);
        }
        Instr::SetL(l) => {
            let t = state.pop();
            state.set_local(l, t);
        }
        Instr::IncL(l, _) => {
            // Pushes the old value, then the local becomes numeric.
            let t = state.local(l);
            state.push(t);
            state.set_local(l, INT_OR_FLOAT);
        }
        Instr::Bin(op) => {
            state.popn(2);
            state.push(bin_result(op));
        }
        Instr::Un(op) => {
            state.pop();
            state.push(match op {
                UnOp::Not => TypeSet::just(ValueKind::Bool),
                UnOp::Neg => INT_OR_FLOAT,
                UnOp::BitNot => TypeSet::just(ValueKind::Int),
            });
        }
        Instr::Jmp(_) => {}
        Instr::JmpZ(_) | Instr::JmpNZ(_) => {
            state.pop();
        }
        Instr::Call { argc, .. } => {
            state.popn(argc as usize);
            state.push(TypeSet::ANY);
        }
        Instr::CallMethod { argc, .. } => {
            state.popn(1 + argc as usize);
            state.push(TypeSet::ANY);
        }
        Instr::CallBuiltin { builtin, argc } => {
            state.popn(argc as usize);
            state.push(builtin_result(builtin));
        }
        Instr::Ret => {
            state.pop();
        }
        Instr::NewObj(_) | Instr::This => state.push(TypeSet::just(ValueKind::Obj)),
        Instr::GetProp(_) => {
            state.pop();
            state.push(TypeSet::ANY);
        }
        Instr::SetProp(_) => state.popn(2),
        Instr::NewVec(n) => {
            state.popn(n as usize);
            state.push(TypeSet::just(ValueKind::Vec));
        }
        Instr::NewDict(n) => {
            state.popn(2 * n as usize);
            state.push(TypeSet::just(ValueKind::Dict));
        }
        Instr::Idx => {
            state.popn(2);
            state.push(TypeSet::ANY);
        }
        Instr::SetIdx => {
            state.popn(3);
            state.push(VEC_OR_DICT);
        }
    }
}

struct TypeAnalysis<'f> {
    func: &'f Func,
}

impl Analysis for TypeAnalysis<'_> {
    type State = Option<TypeState>;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self) -> Option<TypeState> {
        Some(TypeState::entry(self.func))
    }

    fn bottom(&self) -> Option<TypeState> {
        None
    }

    fn transfer(&self, cfg: &Cfg, b: BlockId, state: &Option<TypeState>) -> Option<TypeState> {
        let mut s = state.clone()?;
        let block = cfg.block(b);
        for i in block.start..block.end {
            apply(&mut s, &self.func.code[i as usize]);
        }
        Some(s)
    }
}

/// Runs the type abstract interpretation; `None` states are unreached
/// blocks.
pub fn local_type_analysis(func: &Func, cfg: &Cfg) -> DataflowResults<Option<TypeState>> {
    solve(cfg, &TypeAnalysis { func })
}

/// The statically possible operand types at every `Bin` instruction,
/// keyed by `(instruction index, operand slot)` — slot 0 is the left
/// operand (popped second), slot 1 the right (top of stack). These are
/// exactly the points the profiler's `on_type_observed` hook fires for
/// instruction operands, so observed profiles must be subsets.
pub fn bin_operand_types(func: &Func, cfg: &Cfg) -> HashMap<(u32, u8), TypeSet> {
    let results = local_type_analysis(func, cfg);
    let mut out = HashMap::new();
    for (bi, entry) in results.input.iter().enumerate() {
        let Some(entry) = entry else { continue };
        let mut s = entry.clone();
        let block = &cfg.blocks()[bi];
        for i in block.start..block.end {
            let instr = &func.code[i as usize];
            if let Instr::Bin(_) = instr {
                let n = s.stack.len();
                let rhs = s
                    .stack
                    .get(n.wrapping_sub(1))
                    .copied()
                    .unwrap_or(TypeSet::ANY);
                let lhs = s
                    .stack
                    .get(n.wrapping_sub(2))
                    .copied()
                    .unwrap_or(TypeSet::ANY);
                out.insert((i, 0), lhs);
                out.insert((i, 1), rhs);
            }
            apply(&mut s, instr);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytecode::{FuncId, StrId, UnitId};

    fn func(params: u16, locals: u16, code: Vec<Instr>) -> Func {
        Func {
            id: FuncId::new(0),
            name: StrId::new(0),
            unit: UnitId::new(0),
            params,
            locals,
            class: None,
            code,
        }
    }

    #[test]
    fn constants_have_singleton_types() {
        // return 1 + 2.0
        let f = func(
            0,
            0,
            vec![
                Instr::Int(1),
                Instr::Double(2.0),
                Instr::Bin(BinOp::Add),
                Instr::Ret,
            ],
        );
        let cfg = Cfg::build(&f);
        let ops = bin_operand_types(&f, &cfg);
        assert_eq!(ops[&(2, 0)], TypeSet::just(ValueKind::Int));
        assert_eq!(ops[&(2, 1)], TypeSet::just(ValueKind::Float));
    }

    #[test]
    fn join_unions_local_types_across_branches() {
        // l1 = p0 ? 1 : "s"; l1 + l1
        let f = func(
            1,
            2,
            vec![
                Instr::GetL(0),            // 0 b0
                Instr::JmpZ(5),            // 1 -> b2
                Instr::Int(1),             // 2 b1
                Instr::SetL(1),            // 3
                Instr::Jmp(7),             // 4 -> b3
                Instr::Str(StrId::new(0)), // 5 b2
                Instr::SetL(1),            // 6
                Instr::GetL(1),            // 7 b3
                Instr::GetL(1),            // 8
                Instr::Bin(BinOp::Add),    // 9
                Instr::Ret,                // 10
            ],
        );
        let cfg = Cfg::build(&f);
        let ops = bin_operand_types(&f, &cfg);
        let expect = TypeSet::just(ValueKind::Int).union(TypeSet::just(ValueKind::Str));
        assert_eq!(ops[&(9, 0)], expect);
        assert_eq!(ops[&(9, 1)], expect);
        // Bool is statically impossible at this site.
        assert!(!ops[&(9, 0)].contains(ValueKind::Bool));
    }

    #[test]
    fn params_are_any_and_unwritten_locals_are_null() {
        let f = func(
            1,
            2,
            vec![
                Instr::GetL(0),
                Instr::GetL(1),
                Instr::Bin(BinOp::Eq),
                Instr::Ret,
            ],
        );
        let cfg = Cfg::build(&f);
        let ops = bin_operand_types(&f, &cfg);
        assert_eq!(ops[&(2, 0)], TypeSet::ANY);
        assert_eq!(ops[&(2, 1)], TypeSet::just(ValueKind::Null));
    }

    #[test]
    fn builtin_and_operator_result_types() {
        // strlen(p0) + count(p0), then concat with a string.
        let f = func(
            1,
            1,
            vec![
                Instr::GetL(0),
                Instr::CallBuiltin {
                    builtin: Builtin::Strlen,
                    argc: 1,
                },
                Instr::GetL(0),
                Instr::CallBuiltin {
                    builtin: Builtin::Count,
                    argc: 1,
                },
                Instr::Bin(BinOp::Add), // 4: Int + Int
                Instr::Str(StrId::new(0)),
                Instr::Bin(BinOp::Concat), // 6: (Int|Float) . Str
                Instr::Ret,
            ],
        );
        let cfg = Cfg::build(&f);
        let ops = bin_operand_types(&f, &cfg);
        assert_eq!(ops[&(4, 0)], TypeSet::just(ValueKind::Int));
        assert_eq!(ops[&(4, 1)], TypeSet::just(ValueKind::Int));
        assert_eq!(ops[&(6, 0)], INT_OR_FLOAT);
        assert_eq!(ops[&(6, 1)], TypeSet::just(ValueKind::Str));
    }

    #[test]
    fn loop_reaches_fixpoint_with_widened_local() {
        // l0 starts Int, loop body may make it Float (Add result).
        let f = func(
            0,
            1,
            vec![
                Instr::Int(0),          // 0 b0
                Instr::SetL(0),         // 1
                Instr::GetL(0),         // 2 b1 (loop head)
                Instr::Int(10),         // 3
                Instr::Bin(BinOp::Lt),  // 4
                Instr::JmpZ(11),        // 5 -> exit
                Instr::GetL(0),         // 6 b2
                Instr::Int(1),          // 7
                Instr::Bin(BinOp::Add), // 8
                Instr::SetL(0),         // 9
                Instr::Jmp(2),          // 10 -> loop head
                Instr::Null,            // 11 b3
                Instr::Ret,             // 12
            ],
        );
        let cfg = Cfg::build(&f);
        let ops = bin_operand_types(&f, &cfg);
        // At the comparison, l0 is Int on entry, Int|Float after one trip.
        assert_eq!(ops[&(4, 0)], INT_OR_FLOAT);
        assert_eq!(ops[&(8, 0)], INT_OR_FLOAT);
        // Str never flows here.
        assert!(!ops[&(4, 0)].contains(ValueKind::Str));
    }

    #[test]
    fn type_set_algebra() {
        let i = TypeSet::just(ValueKind::Int);
        let s = TypeSet::just(ValueKind::Str);
        assert!(i.union(s).contains(ValueKind::Int));
        assert!(i.union(s).contains(ValueKind::Str));
        assert!(i.intersect(s).is_empty());
        assert_eq!(TypeSet::ANY.intersect(i), i);
        assert_eq!(format!("{:?}", i.union(s)), "Int|Str");
        assert_eq!(format!("{:?}", TypeSet::ANY), "any");
        assert_eq!(format!("{:?}", TypeSet::EMPTY), "none");
    }
}
