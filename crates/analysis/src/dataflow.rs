//! A reusable dataflow framework over [`bytecode::Cfg`].
//!
//! Classic iterative dataflow: states form a join-semilattice, each block
//! has a monotone transfer function, and a worklist iterates to the least
//! fixpoint. Works in both directions; blocks unreachable from the
//! boundary keep the bottom state.

use bytecode::{BlockId, Cfg};

/// A join-semilattice: a partial order with a least upper bound.
///
/// `join` must be monotone (the result is `>=` both inputs) for the
/// solver to terminate; it returns whether `self` actually changed so the
/// worklist only requeues blocks whose input grew.
pub trait JoinSemiLattice: Clone {
    /// Joins `other` into `self`, returning `true` if `self` changed.
    fn join(&mut self, other: &Self) -> bool;
}

/// `Option<S>` adds a synthetic bottom ("unreached") below any lattice:
/// `None` joined with anything becomes that thing. This is how analyses
/// whose natural join has no bottom (e.g. must-analyses joining by
/// intersection) fit the solver.
impl<S: JoinSemiLattice> JoinSemiLattice for Option<S> {
    fn join(&mut self, other: &Self) -> bool {
        match (self.as_mut(), other) {
            (_, None) => false,
            (None, Some(o)) => {
                *self = Some(o.clone());
                true
            }
            (Some(s), Some(o)) => s.join(o),
        }
    }
}

/// Which way facts flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from block entries to successors.
    Forward,
    /// Facts flow from block exits to predecessors.
    Backward,
}

/// One dataflow problem: direction, boundary/bottom states and a transfer
/// function over a whole block.
pub trait Analysis {
    /// The per-program-point state.
    type State: JoinSemiLattice;

    /// Which way this analysis runs.
    fn direction(&self) -> Direction;

    /// State at the boundary: the function entry (forward) or every
    /// exit block (backward).
    fn boundary(&self) -> Self::State;

    /// The least state, assigned to blocks until facts reach them.
    fn bottom(&self) -> Self::State;

    /// Applies the whole-block transfer function to an input state.
    fn transfer(&self, cfg: &Cfg, block: BlockId, state: &Self::State) -> Self::State;
}

/// Fixpoint states per block.
#[derive(Clone, Debug)]
pub struct DataflowResults<S> {
    /// State at each block's *input* edge: block entry for forward
    /// analyses, block exit for backward ones. Indexed by [`BlockId`].
    pub input: Vec<S>,
    /// State at each block's *output* edge (input pushed through the
    /// transfer function).
    pub output: Vec<S>,
}

/// Runs `analysis` over `cfg` to its least fixpoint.
pub fn solve<A: Analysis>(cfg: &Cfg, analysis: &A) -> DataflowResults<A::State> {
    let n = cfg.len();
    let mut input: Vec<A::State> = (0..n).map(|_| analysis.bottom()).collect();
    let mut output: Vec<A::State> = (0..n).map(|_| analysis.bottom()).collect();
    if n == 0 {
        return DataflowResults { input, output };
    }

    let dir = analysis.direction();
    // Successor lists in the direction facts flow, and the boundary set.
    let (flow_succs, boundary_blocks): (Vec<Vec<BlockId>>, Vec<BlockId>) = match dir {
        Direction::Forward => {
            let succs: Vec<Vec<BlockId>> = cfg
                .blocks()
                .iter()
                .map(|b| b.successors().collect())
                .collect();
            (succs, vec![BlockId::ENTRY])
        }
        Direction::Backward => {
            let mut preds: Vec<Vec<BlockId>> = vec![Vec::new(); n];
            let mut exits = Vec::new();
            for (i, b) in cfg.blocks().iter().enumerate() {
                let id = BlockId(i as u32);
                let mut any = false;
                for s in b.successors() {
                    preds[s.index()].push(id);
                    any = true;
                }
                if !any {
                    exits.push(id);
                }
            }
            (preds, exits)
        }
    };

    let mut work: Vec<BlockId> = Vec::new();
    let mut queued = vec![false; n];
    let b0 = analysis.boundary();
    for b in boundary_blocks {
        input[b.index()].join(&b0);
        work.push(b);
        queued[b.index()] = true;
    }

    while let Some(b) = work.pop() {
        queued[b.index()] = false;
        let out = analysis.transfer(cfg, b, &input[b.index()]);
        for &next in &flow_succs[b.index()] {
            if input[next.index()].join(&out) && !queued[next.index()] {
                queued[next.index()] = true;
                work.push(next);
            }
        }
        output[b.index()] = out;
    }
    DataflowResults { input, output }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytecode::{Func, FuncId, Instr, StrId, UnitId};

    fn func(code: Vec<Instr>) -> Func {
        Func {
            id: FuncId::new(0),
            name: StrId::new(0),
            unit: UnitId::new(0),
            params: 1,
            locals: 2,
            class: None,
            code,
        }
    }

    /// Longest path length from the entry, capped — a tiny lattice:
    /// u32 with max-join, so loops must saturate for the solver to stop.
    #[derive(Clone, PartialEq)]
    struct Count(u32);

    impl JoinSemiLattice for Count {
        fn join(&mut self, other: &Self) -> bool {
            let joined = self.0.max(other.0);
            let changed = joined != self.0;
            self.0 = joined;
            changed
        }
    }

    struct Incr;

    impl Analysis for Incr {
        type State = Count;

        fn direction(&self) -> Direction {
            Direction::Forward
        }

        fn boundary(&self) -> Count {
            Count(1)
        }

        fn bottom(&self) -> Count {
            Count(0)
        }

        fn transfer(&self, _cfg: &Cfg, _b: BlockId, s: &Count) -> Count {
            // Saturating: monotone, finite height, so loops terminate.
            Count(s.0.saturating_add(1).min(10))
        }
    }

    #[test]
    fn forward_fixpoint_terminates_on_loops() {
        // b0 -> b1 -> b0 (loop), b0 -> b2 (exit).
        let f = func(vec![
            Instr::GetL(0), // 0 b0
            Instr::JmpZ(5), // 1 b0 -> b2
            Instr::GetL(0), // 2 b1
            Instr::Pop,     // 3
            Instr::Jmp(0),  // 4 b1 -> b0
            Instr::Ret,     // 5 b2
        ]);
        let cfg = Cfg::build(&f);
        let r = solve(&cfg, &Incr);
        // The loop saturates at the cap instead of diverging.
        assert_eq!(r.input[0].0, 10);
        assert_eq!(r.input[1].0, 10);
        assert_eq!(r.input[2].0, 10);
    }

    /// Set-union lattice over a tiny domain, for join correctness.
    #[derive(Clone, PartialEq, Debug)]
    struct Bits(u32);

    impl JoinSemiLattice for Bits {
        fn join(&mut self, other: &Self) -> bool {
            let j = self.0 | other.0;
            let changed = j != self.0;
            self.0 = j;
            changed
        }
    }

    struct TagBlocks;

    impl Analysis for TagBlocks {
        type State = Bits;

        fn direction(&self) -> Direction {
            Direction::Forward
        }

        fn boundary(&self) -> Bits {
            Bits(0)
        }

        fn bottom(&self) -> Bits {
            Bits(0)
        }

        fn transfer(&self, _cfg: &Cfg, b: BlockId, s: &Bits) -> Bits {
            Bits(s.0 | (1 << b.0))
        }
    }

    #[test]
    fn join_unions_facts_from_all_paths() {
        // Diamond: b0 -> {b1, b2} -> b3.
        let f = func(vec![
            Instr::GetL(0), // 0 b0
            Instr::JmpZ(4), // 1 b0 -> b2
            Instr::Int(1),  // 2 b1
            Instr::Jmp(5),  // 3 b1 -> b3
            Instr::Int(2),  // 4 b2 (falls through)
            Instr::Ret,     // 5 b3
        ]);
        let cfg = Cfg::build(&f);
        let r = solve(&cfg, &TagBlocks);
        // b3's entry has seen both arms but not itself.
        assert_eq!(r.input[3].0, 0b0111);
        assert_eq!(r.output[3].0, 0b1111);
        // Each arm saw only the entry block.
        assert_eq!(r.input[1].0, 0b0001);
        assert_eq!(r.input[2].0, 0b0001);
    }

    struct Live;

    impl Analysis for Live {
        type State = Bits;

        fn direction(&self) -> Direction {
            Direction::Backward
        }

        fn boundary(&self) -> Bits {
            Bits(0)
        }

        fn bottom(&self) -> Bits {
            Bits(0)
        }

        fn transfer(&self, _cfg: &Cfg, b: BlockId, s: &Bits) -> Bits {
            Bits(s.0 | (1 << b.0))
        }
    }

    #[test]
    fn backward_flows_from_exits_to_entry() {
        let f = func(vec![
            Instr::GetL(0), // 0 b0
            Instr::JmpZ(4), // 1 b0 -> b2
            Instr::Int(1),  // 2 b1
            Instr::Jmp(5),  // 3 b1 -> b3
            Instr::Int(2),  // 4 b2
            Instr::Ret,     // 5 b3 (exit)
        ]);
        let cfg = Cfg::build(&f);
        let r = solve(&cfg, &Live);
        // Entry's *output* (which feeds predecessors... none) sees every
        // block on some path to the exit.
        assert_eq!(r.output[0].0, 0b1111);
        // The exit block's input is the boundary.
        assert_eq!(r.input[3].0, 0);
    }

    #[test]
    fn unreachable_blocks_stay_bottom() {
        // b1 (index 2..) is dead: entry jumps straight to the ret.
        let f = func(vec![
            Instr::Jmp(4), // 0 b0 -> b2
            Instr::Int(1), // 1 b1 (dead)
            Instr::Pop,    // 2
            Instr::Jmp(4), // 3 b1 -> b2
            Instr::Ret,    // 4 b2
        ]);
        let cfg = Cfg::build(&f);
        let r = solve(&cfg, &TagBlocks);
        assert_eq!(r.input[1], Bits(0), "dead block keeps bottom");
        assert_eq!(r.input[2].0 & 0b010, 0, "dead block contributes nothing");
    }

    #[test]
    fn option_lattice_treats_none_as_bottom() {
        let mut a: Option<Bits> = None;
        assert!(!a.join(&None));
        assert!(a.join(&Some(Bits(0b01))));
        assert!(a.join(&Some(Bits(0b10))));
        assert!(!a.join(&Some(Bits(0b11))));
        assert_eq!(a, Some(Bits(0b11)));
    }
}
