//! Static analysis over the bytecode repo, and the profile-package linter.
//!
//! The Jump-Start reliability pipeline (paper §VI) defends consumers
//! against bad profile packages with *dynamic* machinery: a validation
//! compile plus smoke boots on the seeder, randomized package selection,
//! and boot-attempt fallback. All of those are expensive — a validation
//! compile is a full consumer boot. This crate adds the cheap first line
//! of defense: **static** checks that decide, without running anything,
//! whether a package's profile data can possibly describe the deployed
//! repo.
//!
//! Layers:
//!
//! * [`dataflow`] — a small reusable forward/backward dataflow framework
//!   over [`bytecode::Cfg`] (join-semilattice states, worklist solver).
//! * [`reach`], [`assign`], [`types`] — analyses built on it:
//!   reachability / dead blocks, definite assignment of locals, and a
//!   type-lattice abstract interpretation of the operand stack.
//! * [`callgraph`] — the whole-repo static call graph: which callees each
//!   call site can possibly produce.
//! * [`lint`] — the profile linter: checks a profile package against the
//!   repo for dangling ids, stale counter shapes, flow-conservation
//!   (Kirchhoff) violations, call arcs no static site can produce,
//!   counters on unreachable blocks, and type observations the abstract
//!   interpretation proves impossible.
//! * [`stale`] — the stale-profile matcher: re-identifies functions and
//!   blocks from a profile collected against an older build (multi-level
//!   hash ladder: exact → opcode → neighborhood → call anchors), infers
//!   flow-consistent counts for what it matched, and prunes
//!   instruction-indexed counters that no longer fit.
//! * [`flow`] — the flow-conservation solver behind [`stale`]: turns the
//!   lint's Kirchhoff *check* into count *inference* over partial matches.

pub mod assign;
pub mod callgraph;
pub mod dataflow;
pub mod fingerprint;
pub mod flow;
pub mod lint;
pub mod reach;
pub mod stale;
pub mod types;

pub use assign::{use_before_assign, UseBeforeAssign};
pub use callgraph::{CallGraph, CallSite, CallSiteKind};
pub use dataflow::{solve, Analysis, DataflowResults, Direction, JoinSemiLattice};
pub use fingerprint::{chunk_fingerprint, layout_fingerprint, unit_layout_fingerprint};
pub use flow::{func_flow_consistent, infer_flow, FlowSolution};
pub use lint::{
    is_own_layer_order, lint_profile, lint_profile_with, Diagnostic, LintOptions, LintReport,
    ProfileView, Rule, Severity,
};
pub use reach::{reachable_blocks, unreachable_blocks};
pub use stale::{
    repair_profile, repair_profile_with, MatchMode, MatchStats, RepairOptions, RepairReport,
};
pub use types::{bin_operand_types, local_type_analysis, TypeSet, TypeState};
