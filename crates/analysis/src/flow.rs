//! Flow-conservation count inference for stale-profile repair.
//!
//! The lint module *checks* Kirchhoff flow conservation: every block's
//! execution count must equal the flow into it (function entries for the
//! entry block, predecessor edge counts elsewhere). This module inverts
//! that check into **inference**: given a CFG, an entry count, and
//! *partial* per-block count hints recovered by the stale matcher, it
//! constructs an exact integer circulation over the CFG — per-block counts
//! plus per-branch edge splits — that satisfies the same conservation law
//! by construction ("Stale Profile Matching", Ayupov et al.; BOLT's
//! flow-consistent counts, PAPERS.md).
//!
//! The algorithm is a two-phase push:
//!
//! 1. **DAG pass** — distribute `enter_count` from the entry block in
//!    reverse post order over forward edges only, splitting at branches
//!    proportionally to the matched count hints of the successors (with
//!    largest-remainder integer rounding, so no flow is created or lost).
//!    At a loop header the pass prefers loop-*exit* successors: entry flow
//!    leaves a loop exactly as often as it enters, while the in-loop mass
//!    is owed to the back edges handled next.
//! 2. **Cycle pass** — for every back edge `u → v` (in outer-to-inner
//!    order), compute the loop mass still owed to the header `v` from its
//!    hint, push that amount from `v` restricted to blocks that can reach
//!    the latch `u`, and return it along the back edge. Each cycle
//!    addition is itself a circulation, so conservation is preserved
//!    exactly at every step.
//!
//! When the hints are complete and already consistent (e.g. a function
//! whose counts survived but whose branch counters were pruned), the
//! inferred solution reproduces them exactly; when they are partial, the
//! unmatched blocks receive the unique flow the matched neighborhood
//! implies along their paths.

use bytecode::{Cfg, Func, FuncId};
use jit::{BranchCount, CtxProfile, FuncProfile};

/// A flow-consistent counter assignment for one function.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FlowSolution {
    /// Inferred execution count per block (indexed by `BlockId`).
    pub counts: Vec<u64>,
    /// Synthesized branch splits: `(instr index, taken, not_taken)` for
    /// every two-successor block whose outflow is nonzero.
    pub branches: Vec<(u32, u64, u64)>,
}

/// Infers flow-consistent block counts for `cfg` from `enter_count` and
/// per-block matched-count `hints` (`None` = block was not matched).
pub fn infer_flow(cfg: &Cfg, enter_count: u64, hints: &[Option<u64>]) -> FlowSolution {
    let n = cfg.len();
    if n == 0 {
        return FlowSolution::default();
    }
    debug_assert_eq!(hints.len(), n);

    // DFS from the entry: reverse post order + back-edge detection.
    let blocks = cfg.blocks();
    let succs: Vec<Vec<usize>> = blocks
        .iter()
        .map(|b| b.successors().map(|s| s.index()).collect())
        .collect();
    let mut state = vec![0u8; n]; // 0 = white, 1 = gray, 2 = black
    let mut post: Vec<usize> = Vec::with_capacity(n);
    let mut back_edges: Vec<(usize, usize)> = Vec::new(); // (latch, header)
                                                          // Iterative DFS with an explicit (block, next-successor) stack.
    let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
    state[0] = 1;
    while let Some(&mut (b, ref mut i)) = stack.last_mut() {
        if *i < succs[b].len() {
            let s = succs[b][*i];
            *i += 1;
            match state[s] {
                0 => {
                    state[s] = 1;
                    stack.push((s, 0));
                }
                1 => back_edges.push((b, s)),
                _ => {}
            }
        } else {
            state[b] = 2;
            post.push(b);
            stack.pop();
        }
    }
    let order: Vec<usize> = post.iter().rev().copied().collect(); // RPO
    let mut pos = vec![usize::MAX; n];
    for (p, &b) in order.iter().enumerate() {
        pos[b] = p;
    }
    let back: std::collections::HashSet<(usize, usize)> = back_edges.iter().copied().collect();
    // Forward (DAG) successors only; RPO is a topological order for these.
    let dag_succs: Vec<Vec<usize>> = succs
        .iter()
        .enumerate()
        .map(|(b, ss)| {
            ss.iter()
                .copied()
                .filter(|&s| !back.contains(&(b, s)))
                .collect()
        })
        .collect();

    // Per back edge: the set of blocks that can reach the latch over DAG
    // edges (the loop body, for reducible graphs). Union per header gives
    // the header's in-loop successors, which the DAG pass avoids.
    let mut reach_masks: Vec<Vec<bool>> = Vec::with_capacity(back_edges.len());
    for &(latch, _) in &back_edges {
        let mut mask = vec![false; n];
        mask[latch] = true;
        // Reverse reachability over DAG edges, walked in reverse RPO.
        for p in (0..order.len()).rev() {
            let b = order[p];
            if !mask[b] && dag_succs[b].iter().any(|&s| mask[s]) {
                mask[b] = true;
            }
        }
        reach_masks.push(mask);
    }
    let mut in_loop_succ: Vec<Vec<bool>> = vec![vec![false; n]; n];
    let mut is_header = vec![false; n];
    for (be, &(_, header)) in back_edges.iter().enumerate() {
        is_header[header] = true;
        for &s in &dag_succs[header] {
            if reach_masks[be][s] {
                in_loop_succ[header][s] = true;
            }
        }
    }

    let mut total = vec![0u64; n];
    let mut edge_flow: std::collections::HashMap<(usize, usize), u64> =
        std::collections::HashMap::new();

    let push = |start: usize,
                amount: u64,
                restrict: Option<(&[bool], usize)>,
                total: &mut [u64],
                edge_flow: &mut std::collections::HashMap<(usize, usize), u64>| {
        if amount == 0 || pos[start] == usize::MAX {
            return;
        }
        let mut pending = vec![0u64; n];
        pending[start] = amount;
        total[start] += amount;
        for &b in &order[pos[start]..] {
            let f = std::mem::take(&mut pending[b]);
            if f == 0 {
                continue;
            }
            if let Some((_, target)) = restrict {
                if b == target {
                    continue; // absorbed at the latch; returned via the back edge
                }
            }
            let eligible: Vec<usize> = dag_succs[b]
                .iter()
                .copied()
                .filter(|&s| restrict.is_none_or(|(mask, _)| mask[s]))
                .collect();
            if eligible.is_empty() {
                continue; // terminal: flow leaves the function here
            }
            // Hint-proportional weights; at a loop header route the pass's
            // flow to the loop exits (the loop body is fed by back edges).
            let mut weights: Vec<u64> = eligible.iter().map(|&s| hints[s].unwrap_or(0)).collect();
            let mut prefer_exits = false;
            if is_header[b] {
                let mixed = eligible.iter().any(|&s| in_loop_succ[b][s])
                    && eligible.iter().any(|&s| !in_loop_succ[b][s]);
                if mixed {
                    prefer_exits = true;
                    for (w, &s) in weights.iter_mut().zip(&eligible) {
                        if in_loop_succ[b][s] {
                            *w = 0;
                        }
                    }
                }
            }
            if weights.iter().all(|&w| w == 0) {
                // Unhinted: split evenly — but never back into successors the
                // header preference just excluded (the cycle pass feeds those).
                for (w, &s) in weights.iter_mut().zip(&eligible) {
                    if !prefer_exits || !in_loop_succ[b][s] {
                        *w = 1;
                    }
                }
            }
            let wsum: u128 = weights.iter().map(|&w| w as u128).sum();
            let mut given = 0u64;
            let mut amounts: Vec<u64> = weights
                .iter()
                .map(|&w| {
                    let a = ((f as u128 * w as u128) / wsum) as u64;
                    given += a;
                    a
                })
                .collect();
            // Largest-remainder: hand the rounding slack to the heaviest arm.
            if given < f {
                let heaviest = weights
                    .iter()
                    .enumerate()
                    .max_by_key(|&(i, &w)| (w, std::cmp::Reverse(i)))
                    .map(|(i, _)| i)
                    .unwrap();
                amounts[heaviest] += f - given;
            }
            for (&s, &a) in eligible.iter().zip(&amounts) {
                if a > 0 {
                    *edge_flow.entry((b, s)).or_insert(0) += a;
                    pending[s] += a;
                    total[s] += a;
                }
            }
        }
    };

    // Phase 1: distribute the entry mass over the DAG.
    push(0, enter_count, None, &mut total, &mut edge_flow);

    // Phase 2: cycle flows, outermost headers first (ascending RPO).
    let mut ordered: Vec<usize> = (0..back_edges.len()).collect();
    ordered.sort_by_key(|&i| (pos[back_edges[i].1], pos[back_edges[i].0]));
    for be in ordered {
        let (latch, header) = back_edges[be];
        let owed = match (hints[header], hints[latch]) {
            (Some(h), _) => h.saturating_sub(total[header]),
            (None, Some(h)) => h.saturating_sub(total[latch]),
            (None, None) => 0,
        };
        if owed == 0 {
            continue;
        }
        if latch == header {
            // Self-loop: the circulation is the back edge itself.
            total[header] += owed;
            *edge_flow.entry((latch, header)).or_insert(0) += owed;
            continue;
        }
        if !reach_masks[be][header] {
            continue; // irreducible region the DAG cannot thread; leave it
        }
        push(
            header,
            owed,
            Some((&reach_masks[be], latch)),
            &mut total,
            &mut edge_flow,
        );
        *edge_flow.entry((latch, header)).or_insert(0) += owed;
    }

    // Synthesize branch splits from the edge flows.
    let mut branches = Vec::new();
    for (bi, b) in blocks.iter().enumerate() {
        if let (Some(t), Some(ft)) = (b.taken, b.fallthrough) {
            let at = b.end - 1;
            let (taken, not_taken) = if t == ft {
                (edge_flow.get(&(bi, t.index())).copied().unwrap_or(0), 0)
            } else {
                (
                    edge_flow.get(&(bi, t.index())).copied().unwrap_or(0),
                    edge_flow.get(&(bi, ft.index())).copied().unwrap_or(0),
                )
            };
            if taken + not_taken > 0 {
                branches.push((at, taken, not_taken));
            }
        }
    }

    FlowSolution {
        counts: total,
        branches,
    }
}

/// Mirrors the lint module's Kirchhoff check for one function: `true` iff
/// the profile's block counts and (aggregated) branch counters are
/// flow-consistent, with the same indeterminate-branch leniency the lint
/// applies. The consumer's repair path uses this to find functions whose
/// *counts* survived a push but whose branch data no longer balances.
pub fn func_flow_consistent(fid: FuncId, func: &Func, fp: &FuncProfile, ctx: &CtxProfile) -> bool {
    let cfg = Cfg::build(func);
    let n = cfg.len();
    if fp.block_counts.len() != n {
        return false;
    }
    let mut inflow = vec![0u64; n];
    let mut indeterminate = vec![false; n];
    inflow[0] = inflow[0].saturating_add(fp.enter_count);
    for (bi, block) in cfg.blocks().iter().enumerate() {
        let count = fp.block_counts[bi];
        match (block.taken, block.fallthrough) {
            (Some(t), Some(ft)) => {
                let at = block.end - 1;
                let bc: BranchCount = ctx.aggregate_branch(fid, at);
                if bc.total() == 0 {
                    if count > 0 {
                        indeterminate[t.index()] = true;
                        indeterminate[ft.index()] = true;
                    }
                } else if bc.total() != count {
                    return false;
                } else {
                    inflow[t.index()] = inflow[t.index()].saturating_add(bc.taken);
                    inflow[ft.index()] = inflow[ft.index()].saturating_add(bc.not_taken);
                }
            }
            (Some(s), None) | (None, Some(s)) => {
                inflow[s.index()] = inflow[s.index()].saturating_add(count);
            }
            (None, None) => {}
        }
    }
    (0..n).all(|b| indeterminate[b] || inflow[b] == fp.block_counts[b])
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytecode::{BinOp, FuncBuilder, Instr, RepoBuilder};

    fn diamond() -> Func {
        // b0: cond -> b1 / b2; both join at b3.
        let mut b = RepoBuilder::new();
        let u = b.declare_unit("t.hl");
        let mut f = FuncBuilder::new("d", 1);
        let els = f.new_label();
        let end = f.new_label();
        f.emit(Instr::GetL(0));
        f.emit_jmp_z(els);
        f.emit(Instr::Int(1));
        f.emit_jmp(end);
        f.bind(els);
        f.emit(Instr::Int(2));
        f.bind(end);
        f.emit(Instr::Ret);
        let fid = b.define_func(u, f);
        b.finish().func(fid).clone()
    }

    fn looped() -> Func {
        // b0: init; b1: header cond -> exit b3; b2: body, jmp b1.
        let mut b = RepoBuilder::new();
        let u = b.declare_unit("t.hl");
        let mut f = FuncBuilder::new("l", 1);
        let head = f.new_label();
        let exit = f.new_label();
        f.emit(Instr::Int(0));
        f.emit(Instr::SetL(0));
        f.bind(head);
        f.emit(Instr::GetL(0));
        f.emit_jmp_z(exit);
        f.emit(Instr::GetL(0));
        f.emit(Instr::Int(1));
        f.emit(Instr::Bin(BinOp::Sub));
        f.emit(Instr::SetL(0));
        f.emit_jmp(head);
        f.bind(exit);
        f.emit(Instr::Ret);
        let fid = b.define_func(u, f);
        b.finish().func(fid).clone()
    }

    fn consistent(cfg: &Cfg, enter: u64, sol: &FlowSolution) -> bool {
        let n = cfg.len();
        let mut inflow = vec![0u64; n];
        inflow[0] += enter;
        let by_at: std::collections::HashMap<u32, (u64, u64)> = sol
            .branches
            .iter()
            .map(|&(at, t, nt)| (at, (t, nt)))
            .collect();
        for (bi, b) in cfg.blocks().iter().enumerate() {
            match (b.taken, b.fallthrough) {
                (Some(t), Some(ft)) => {
                    let (bt, bnt) = by_at.get(&(b.end - 1)).copied().unwrap_or((0, 0));
                    if bt + bnt != sol.counts[bi] {
                        return false;
                    }
                    inflow[t.index()] += bt;
                    inflow[ft.index()] += bnt;
                }
                (Some(s), None) | (None, Some(s)) => inflow[s.index()] += sol.counts[bi],
                (None, None) => {}
            }
        }
        (0..n).all(|b| inflow[b] == sol.counts[b])
    }

    #[test]
    fn complete_consistent_hints_are_reproduced_exactly() {
        let f = looped();
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.len(), 4);
        // 30 entries, 1200 total iterations, 30 exits.
        let hints = vec![Some(30), Some(1230), Some(1200), Some(30)];
        let sol = infer_flow(&cfg, 30, &hints);
        assert_eq!(sol.counts, vec![30, 1230, 1200, 30]);
        assert!(consistent(&cfg, 30, &sol));
    }

    #[test]
    fn partial_hints_fill_in_flow_consistently() {
        let f = diamond();
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.len(), 4);
        // Only the arms are known: 70 vs 30. The entry and join are inferred.
        let hints = vec![None, Some(70), Some(30), None];
        let sol = infer_flow(&cfg, 100, &hints);
        assert_eq!(sol.counts, vec![100, 70, 30, 100]);
        assert!(consistent(&cfg, 100, &sol));
    }

    #[test]
    fn no_hints_still_yields_a_consistent_flow() {
        for func in [diamond(), looped()] {
            let cfg = Cfg::build(&func);
            let hints = vec![None; cfg.len()];
            let sol = infer_flow(&cfg, 64, &hints);
            assert!(consistent(&cfg, 64, &sol), "{}", func.id.index());
            assert_eq!(sol.counts[0], 64);
        }
    }

    #[test]
    fn zero_enter_count_is_all_zero() {
        let f = diamond();
        let cfg = Cfg::build(&f);
        let sol = infer_flow(&cfg, 0, &vec![None; cfg.len()]);
        assert!(sol.counts.iter().all(|&c| c == 0));
        assert!(sol.branches.is_empty());
    }
}
