//! Structural fingerprints of layout inputs.
//!
//! The consumer's layout-plan cache ([`layout::PlanCache`]) keys plans by
//! a hash of exactly the inputs [`jit::plan_layout_parts`] consumes. The
//! hash reuses [`bytecode::Fnv`] — the same FNV-1a family behind
//! [`bytecode::Cfg::block_hashes`], which the stale-profile matcher in
//! [`crate::stale`] already relies on — so every structural fingerprint in
//! the system comes from one hasher.
//!
//! Fingerprints are advisory: the cache compares full keys on lookup, so
//! a collision costs a recomputation, never a wrong plan.

use bytecode::Fnv;
use jit::vasm::VasmUnit;
use layout::{BlockEdge, BlockNode};

/// Fingerprints the layout inputs of a plan: block sizes/weights and the
/// weighted edge list, length-prefixed so concatenation ambiguities cannot
/// alias.
pub fn layout_fingerprint(blocks: &[BlockNode], edges: &[BlockEdge]) -> u64 {
    let mut h = Fnv::new();
    h.u64(blocks.len() as u64);
    for b in blocks {
        h.u64(b.size as u64);
        h.u64(b.weight);
    }
    h.u64(edges.len() as u64);
    for e in edges {
        h.u64(e.src as u64);
        h.u64(e.dst as u64);
        h.u64(e.weight);
    }
    h.finish()
}

/// [`layout_fingerprint`] of a translated unit's layout view.
pub fn unit_layout_fingerprint(unit: &VasmUnit) -> u64 {
    layout_fingerprint(&unit.layout_blocks(), &unit.layout_edges())
}

/// Content hash of a serialized chunk: length-prefixed FNV-1a over the
/// raw bytes. This is the chunk id of the content-addressed package
/// store — two chunks share an id exactly when their bytes are equal
/// (modulo the advisory-hash caveat above; the store additionally keeps
/// a per-chunk CRC-32, so a collision is detected, not silently merged).
pub fn chunk_fingerprint(bytes: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.u64(bytes.len() as u64);
    for &b in bytes {
        h.u8(b);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocks(ws: &[u64]) -> Vec<BlockNode> {
        ws.iter()
            .map(|&w| BlockNode { size: 4, weight: w })
            .collect()
    }

    #[test]
    fn identical_inputs_fingerprint_identically() {
        let b = blocks(&[1, 2, 3]);
        let e = vec![BlockEdge {
            src: 0,
            dst: 1,
            weight: 9,
        }];
        assert_eq!(layout_fingerprint(&b, &e), layout_fingerprint(&b, &e));
    }

    #[test]
    fn weight_and_shape_changes_change_the_fingerprint() {
        let e = vec![BlockEdge {
            src: 0,
            dst: 1,
            weight: 9,
        }];
        let base = layout_fingerprint(&blocks(&[1, 2, 3]), &e);
        assert_ne!(base, layout_fingerprint(&blocks(&[1, 2, 4]), &e));
        assert_ne!(base, layout_fingerprint(&blocks(&[1, 2]), &e));
        assert_ne!(base, layout_fingerprint(&blocks(&[1, 2, 3]), &[]));
        let e2 = vec![BlockEdge {
            src: 0,
            dst: 2,
            weight: 9,
        }];
        assert_ne!(base, layout_fingerprint(&blocks(&[1, 2, 3]), &e2));
    }

    #[test]
    fn length_prefix_prevents_block_edge_aliasing() {
        // One block moved from the block list into the edge list must not
        // collide even though the raw word stream could line up.
        let a = layout_fingerprint(&blocks(&[5]), &[]);
        let b = layout_fingerprint(
            &[],
            &[BlockEdge {
                src: 4,
                dst: 5,
                weight: 0,
            }],
        );
        assert_ne!(a, b);
    }
}
