//! Stale-profile repair: re-identifying and remapping counters collected
//! against an older build onto the current code.
//!
//! At scale, a consumer's repo is often one push ahead of the package it
//! downloads (the paper tolerates this on purpose — §VII-C shows profiles
//! stay useful for days of pushes). Most functions are untouched by a
//! push, so most of the package is still exact; the functions that *did*
//! change have counters indexed by ids and block positions that no longer
//! exist. This module salvages the package instead of discarding it, in
//! three phases ("Stale Profile Matching", Ayupov et al., PAPERS.md):
//!
//! 1. **Function identity** — ids renumber wholesale across builds, so
//!    profiled functions are re-identified by *name hash* first, then (for
//!    renamed functions) by a unique whole-body opcode fingerprint. Call
//!    targets and context keys are rewritten through the resulting old→new
//!    id map; functions that resolve to nothing are dropped.
//! 2. **Block matching ladder** — each surviving function's blocks are
//!    matched against the current [`bytecode::Cfg`] at four levels of
//!    decreasing strictness: exact structural hash, opcode-only hash
//!    (survives immediate renumbering), neighborhood hash (disambiguates
//!    duplicate bodies by graph position) and call-site anchors (names of
//!    the block's call targets). Each level pairs equal hashes in relative
//!    block order, so duplicate hashes can no longer misalign the way the
//!    old greedy in-order scan did.
//! 3. **Flow-conservation inference** — matched counts become *hints* to
//!    [`crate::flow::infer_flow`], which constructs an exact integer
//!    circulation over the new CFG. Unmatched regions get consistent
//!    inferred counts instead of zeros, branch splits are synthesized from
//!    the edge flows, and every repaired function passes the same
//!    Kirchhoff flow lint as a fresh one.
//!
//! Functions whose counter mass mostly lands on unmatched blocks are still
//! dropped ([`MIN_MATCHED_MASS`]), and instruction-indexed counters (call
//! targets, types, branch outcomes) that no longer point at a matching
//! profile point are pruned, as before.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

use bytecode::{Cfg, Fnv, FuncId, Instr, Repo};
use jit::{BranchCount, CtxProfile, FuncProfile, TierProfile, PARAM_SITE};

use crate::callgraph::CallGraph;
use crate::flow::{func_flow_consistent, infer_flow};

/// Minimum fraction of a function's counter mass that must land on
/// hash-matched blocks for the repair to be trusted.
const MIN_MATCHED_MASS: f64 = 0.5;

/// How stale functions are matched.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MatchMode {
    /// The full v2 pipeline: name/body identity, four-level block ladder,
    /// flow-conservation inference.
    #[default]
    Full,
    /// Drop every function that is not exactly fresh (the pre-matching
    /// baseline the `jsstale` bench compares against).
    DropStale,
    /// The original greedy in-order exact-hash scan, kept for comparison.
    LegacyGreedy,
}

/// Options for [`repair_profile_with`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairOptions {
    /// Matching mode.
    pub mode: MatchMode,
}

/// Per-level match statistics, mirrored into the consumer's telemetry
/// registry as `repair.*` counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Functions whose profile was already exact for the current build.
    pub funcs_fresh: u64,
    /// Functions re-identified by body fingerprint after a rename.
    pub funcs_renamed: u64,
    /// Functions whose counts were kept but whose branch counters had to
    /// be resynthesized to restore flow conservation.
    pub funcs_rebalanced: u64,
    /// Blocks matched by exact structural hash.
    pub blocks_exact: u64,
    /// Blocks matched by opcode-only hash.
    pub blocks_opcode: u64,
    /// Blocks matched by neighborhood hash.
    pub blocks_neighbor: u64,
    /// Blocks matched by call-site anchors.
    pub blocks_anchor: u64,
    /// New-CFG blocks with no match that received a nonzero inferred count.
    pub blocks_inferred: u64,
    /// Old counter entries not carried over (unmatched blocks of repaired
    /// functions plus all blocks of dropped functions).
    pub blocks_dropped: u64,
    /// Counter mass carried over through block matches.
    pub mass_matched: u64,
    /// Counter mass lost to dropped functions and unmatched blocks.
    pub mass_dropped: u64,
    /// Branch counters synthesized from inferred edge flows.
    pub branches_synthesized: u64,
}

/// What [`repair_profile`] did.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RepairReport {
    /// Functions whose block counters were remapped onto a changed CFG
    /// (keyed by *current-build* id after re-identification).
    pub repaired: Vec<FuncId>,
    /// Functions dropped entirely (unresolvable id, or too little counter
    /// mass survived the match), keyed by their *old* id.
    pub dropped: Vec<FuncId>,
    /// Instruction-indexed counter entries pruned because their profile
    /// point no longer exists (or can't produce them).
    pub pruned: usize,
    /// Match-ladder statistics.
    pub stats: MatchStats,
}

impl RepairReport {
    /// Whether the profile was already fully consistent.
    pub fn untouched(&self) -> bool {
        self.repaired.is_empty() && self.dropped.is_empty() && self.pruned == 0
    }
}

/// Remaps `old` counters (with hashes `old_hashes`) onto blocks of the
/// current CFG by greedy in-order hash matching (the legacy v1 scan).
/// Returns the new counter vector, the matched counter mass, and how many
/// old counter entries the scan never examined — previously those were
/// silently truncated; callers must report them as pruned.
fn remap_counts(old: &[u64], old_hashes: &[u64], cur_hashes: &[u64]) -> (Vec<u64>, u64, usize) {
    let mut counts = vec![0u64; cur_hashes.len()];
    let mut matched = 0u64;
    let mut cursor = 0usize;
    let mut visited = 0usize;
    for (i, &h) in old_hashes.iter().enumerate() {
        let Some(&c) = old.get(i) else { break };
        visited += 1;
        if let Some(j) = cur_hashes[cursor..].iter().position(|&ch| ch == h) {
            let j = cursor + j;
            counts[j] = c;
            matched += c;
            cursor = j + 1;
        }
        if cursor >= cur_hashes.len() {
            break;
        }
    }
    (counts, matched, old.len() - visited)
}

// One rung of the matching ladder, as stats indices.
const LEVEL_EXACT: u8 = 0;
const LEVEL_OPCODE: u8 = 1;
const LEVEL_NEIGHBOR: u8 = 2;
const LEVEL_ANCHOR: u8 = 3;

/// Matches old blocks to new blocks through the four-level hash ladder.
/// Returns, per new block, the matched old block index and the level that
/// matched it. Within one level, equal hashes pair up in relative block
/// order; every level only considers blocks the stricter levels left
/// unmatched.
fn match_blocks(old_counts: &[u64], levels: [(&[u64], &[u64]); 4]) -> Vec<Option<(usize, u8)>> {
    let n_old = old_counts.len();
    let n_new = levels
        .iter()
        .map(|(_, cur)| cur.len())
        .find(|&l| l > 0)
        .unwrap_or(0);
    let mut old_taken = vec![false; n_old];
    let mut assigned: Vec<Option<(usize, u8)>> = vec![None; n_new];
    for (level, &(old_h, cur_h)) in levels.iter().enumerate() {
        // A level is usable only if its arrays line up with both sides.
        if old_h.len() != n_old || cur_h.len() != n_new || old_h.is_empty() {
            continue;
        }
        let level = level as u8;
        let mut by_hash: BTreeMap<u64, VecDeque<usize>> = BTreeMap::new();
        for (i, &h) in old_h.iter().enumerate() {
            let anchorless = level == LEVEL_ANCHOR && h == 0;
            if !old_taken[i] && !anchorless {
                by_hash.entry(h).or_default().push_back(i);
            }
        }
        for (j, slot) in assigned.iter_mut().enumerate() {
            if slot.is_some() {
                continue;
            }
            let h = cur_h[j];
            if level == LEVEL_ANCHOR && h == 0 {
                continue;
            }
            if let Some(q) = by_hash.get_mut(&h) {
                if let Some(i) = q.pop_front() {
                    *slot = Some((i, level));
                    old_taken[i] = true;
                }
            }
        }
    }
    assigned
}

/// Repairs `tier` and `ctx` in place against `repo` with default options
/// (the full v2 matching pipeline).
///
/// After a successful repair the profile passes the *strict* lint rules,
/// including flow conservation: matched counts are turned into an exact
/// integer circulation and branch counters are resynthesized from its edge
/// flows, so repaired functions balance just like fresh ones.
pub fn repair_profile(repo: &Repo, tier: &mut TierProfile, ctx: &mut CtxProfile) -> RepairReport {
    repair_profile_with(repo, tier, ctx, &RepairOptions::default())
}

/// [`repair_profile`] with an explicit [`MatchMode`].
pub fn repair_profile_with(
    repo: &Repo,
    tier: &mut TierProfile,
    ctx: &mut CtxProfile,
    opts: &RepairOptions,
) -> RepairReport {
    let mut report = RepairReport::default();
    let graph = CallGraph::build(repo);

    // ---- Phase 1: function identity --------------------------------
    resolve_identities(repo, tier, ctx, opts.mode, &mut report);

    // ---- Phase 2: per-function block matching + flow inference -----
    let mut fids: Vec<FuncId> = tier.funcs.keys().copied().collect();
    fids.sort_by_key(|f| f.index());
    let mut stale_drops = Vec::new();
    for fid in fids {
        let fp = tier.funcs.get_mut(&fid).expect("resolved id");
        let func = repo.func(fid);
        let cfg = Cfg::build(func);
        let cur_exact = cfg.block_hashes(func, repo);
        let fresh = fp.block_counts.len() == cfg.len()
            && (fp.block_hashes.is_empty() || fp.block_hashes == cur_exact);
        if fresh {
            report.stats.funcs_fresh += 1;
            report.pruned += prune_func_profile(repo, &graph, fid, fp);
            continue;
        }
        let total: u64 = fp.block_counts.iter().sum();
        match opts.mode {
            MatchMode::DropStale => {
                report.stats.blocks_dropped += fp.block_counts.len() as u64;
                report.stats.mass_dropped += total;
                stale_drops.push(fid);
                continue;
            }
            MatchMode::LegacyGreedy => {
                if fp.block_hashes.len() != fp.block_counts.len() || fp.block_hashes.is_empty() {
                    report.stats.mass_dropped += total;
                    stale_drops.push(fid);
                    continue;
                }
                let (counts, matched, skipped) =
                    remap_counts(&fp.block_counts, &fp.block_hashes, &cur_exact);
                report.pruned += skipped;
                if total > 0 && (matched as f64) < MIN_MATCHED_MASS * total as f64 {
                    report.stats.mass_dropped += total;
                    stale_drops.push(fid);
                    continue;
                }
                report.stats.mass_matched += matched;
                report.stats.mass_dropped += total - matched;
                fp.block_counts = counts;
                fp.block_hashes = cur_exact;
                refresh_signatures(repo, fid, fp, &cfg);
                report.repaired.push(fid);
            }
            MatchMode::Full => {
                let cur_opcode = cfg.block_opcode_hashes(func);
                let cur_neighbor = cfg.block_neighbor_hashes(func);
                let cur_anchor = cfg.block_anchor_hashes(func, repo);
                let assigned = match_blocks(
                    &fp.block_counts,
                    [
                        (fp.block_hashes.as_slice(), cur_exact.as_slice()),
                        (fp.block_opcode_hashes.as_slice(), cur_opcode.as_slice()),
                        (fp.block_neighbor_hashes.as_slice(), cur_neighbor.as_slice()),
                        (fp.block_anchor_hashes.as_slice(), cur_anchor.as_slice()),
                    ],
                );
                let matched: u64 = assigned
                    .iter()
                    .flatten()
                    .map(|&(i, _)| fp.block_counts[i])
                    .sum();
                if total > 0 && (matched as f64) < MIN_MATCHED_MASS * total as f64 {
                    report.stats.blocks_dropped += fp.block_counts.len() as u64;
                    report.stats.mass_dropped += total;
                    stale_drops.push(fid);
                    continue;
                }
                let mut matched_old = vec![false; fp.block_counts.len()];
                let hints: Vec<Option<u64>> = assigned
                    .iter()
                    .map(|a| {
                        a.map(|(i, _)| {
                            matched_old[i] = true;
                            fp.block_counts[i]
                        })
                    })
                    .collect();
                for a in assigned.iter().flatten() {
                    match a.1 {
                        LEVEL_EXACT => report.stats.blocks_exact += 1,
                        LEVEL_OPCODE => report.stats.blocks_opcode += 1,
                        LEVEL_NEIGHBOR => report.stats.blocks_neighbor += 1,
                        _ => report.stats.blocks_anchor += 1,
                    }
                }
                report.stats.blocks_dropped += matched_old.iter().filter(|&&m| !m).count() as u64;
                report.stats.mass_matched += matched;
                report.stats.mass_dropped += total - matched;

                let sol = infer_flow(&cfg, fp.enter_count, &hints);
                report.stats.blocks_inferred += sol
                    .counts
                    .iter()
                    .zip(&hints)
                    .filter(|&(&c, h)| h.is_none() && c > 0)
                    .count() as u64;
                fp.block_counts = sol.counts;
                fp.block_hashes = cur_exact;
                refresh_signatures(repo, fid, fp, &cfg);
                report.stats.branches_synthesized += replace_branches(ctx, fid, &sol.branches);
                report.repaired.push(fid);
            }
        }
        let fp = tier.funcs.get_mut(&fid).expect("still present");
        report.pruned += prune_func_profile(repo, &graph, fid, fp);
    }
    stale_drops.sort_by_key(|f| f.index());
    for f in &stale_drops {
        tier.funcs.remove(f);
    }
    report.dropped.extend(stale_drops);

    report.pruned += prune_prop_tables(repo, tier);
    report.pruned += prune_ctx(repo, &graph, ctx);

    // ---- Phase 3: flow rebalance -----------------------------------
    // Pruning can remove part of a fresh function's branch data (e.g. its
    // caller's inline context vanished), leaving counts that no longer
    // balance. Resynthesize those functions' branch counters from their
    // own (already consistent) counts so the strict flow lint passes.
    if opts.mode == MatchMode::Full {
        let mut fids: Vec<FuncId> = tier.funcs.keys().copied().collect();
        fids.sort_by_key(|f| f.index());
        let repaired: HashSet<FuncId> = report.repaired.iter().copied().collect();
        for fid in fids {
            if repaired.contains(&fid) {
                continue; // consistent by construction
            }
            let fp = tier.funcs.get_mut(&fid).expect("present");
            let func = repo.func(fid);
            if func_flow_consistent(fid, func, fp, ctx) {
                continue;
            }
            let cfg = Cfg::build(func);
            let hints: Vec<Option<u64>> = fp.block_counts.iter().map(|&c| Some(c)).collect();
            let sol = infer_flow(&cfg, fp.enter_count, &hints);
            fp.block_counts = sol.counts;
            report.stats.branches_synthesized += replace_branches(ctx, fid, &sol.branches);
            report.stats.funcs_rebalanced += 1;
            report.repaired.push(fid);
        }
    }

    report.repaired.sort_by_key(|f| f.index());
    report.repaired.dedup();
    // Counters were dropped/remapped in place; any cached heat ranking on
    // the profile is stale now.
    tier.mark_counters_dirty();
    report
}

/// Re-keys the tier/ctx onto current-build function ids.
///
/// Legacy profiles (no `name_hash`) keep id-as-is semantics: in-range ids
/// are trusted, out-of-range ids are dropped. v5 profiles are re-keyed by
/// name hash; still-unresolved ones get one more chance via a unique
/// whole-body opcode fingerprint (catches renamed-but-unchanged functions).
fn resolve_identities(
    repo: &Repo,
    tier: &mut TierProfile,
    ctx: &mut CtxProfile,
    mode: MatchMode,
    report: &mut RepairReport,
) {
    let func_count = repo.funcs().len();
    let full = mode == MatchMode::Full;

    let mut by_name: HashMap<u64, Option<FuncId>> = HashMap::new();
    let mut by_body: HashMap<u64, Option<FuncId>> = HashMap::new();
    if full {
        for f in repo.funcs() {
            let name_hash = bytecode::fnv_str(repo.str(f.name));
            by_name
                .entry(name_hash)
                .and_modify(|e| *e = None) // ambiguous name: never match on it
                .or_insert(Some(f.id));
            let cfg = Cfg::build(f);
            let mut h = Fnv::new();
            for hash in cfg.block_opcode_hashes(f) {
                h.u64(hash);
            }
            by_body
                .entry(h.finish())
                .and_modify(|e| *e = None) // ambiguous body: never match on it
                .or_insert(Some(f.id));
        }
    }

    let mut old_fids: Vec<FuncId> = tier.funcs.keys().copied().collect();
    old_fids.sort_by_key(|f| f.index());
    let mut claimed: HashSet<FuncId> = HashSet::new();
    let mut resolved: Vec<(FuncId, FuncId)> = Vec::new();
    let mut second_chance: Vec<FuncId> = Vec::new();
    for &fid in &old_fids {
        let fp = &tier.funcs[&fid];
        let target = if full && fp.name_hash != 0 {
            by_name.get(&fp.name_hash).copied().flatten()
        } else if fid.index() < func_count {
            Some(fid)
        } else {
            None
        };
        match target {
            Some(nf) if claimed.insert(nf) => resolved.push((fid, nf)),
            _ if full && fp.name_hash != 0 => second_chance.push(fid),
            _ => {
                report.stats.mass_dropped += fp.block_counts.iter().sum::<u64>();
                report.dropped.push(fid);
            }
        }
    }
    // Renamed functions: a unique, unchanged body is identity enough.
    for fid in second_chance {
        let fp = &tier.funcs[&fid];
        let target = (!fp.block_opcode_hashes.is_empty())
            .then(|| {
                let mut h = Fnv::new();
                for &hash in &fp.block_opcode_hashes {
                    h.u64(hash);
                }
                by_body.get(&h.finish()).copied().flatten()
            })
            .flatten();
        match target {
            Some(nf) if claimed.insert(nf) => {
                report.stats.funcs_renamed += 1;
                resolved.push((fid, nf));
            }
            _ => {
                report.stats.mass_dropped += fp.block_counts.iter().sum::<u64>();
                report.dropped.push(fid);
            }
        }
    }
    report.dropped.sort_by_key(|f| f.index());

    let moved: HashMap<FuncId, FuncId> = resolved.iter().copied().filter(|(o, n)| o != n).collect();
    let resolved_old: HashSet<FuncId> = resolved.iter().map(|&(o, _)| o).collect();
    let mut funcs = std::mem::take(&mut tier.funcs);
    funcs.retain(|f, _| resolved_old.contains(f));
    if !moved.is_empty() {
        let map = |f: FuncId| moved.get(&f).copied().unwrap_or(f);
        let mut rekeyed: HashMap<FuncId, FuncProfile> = HashMap::with_capacity(funcs.len());
        for (old, mut fp) in funcs.drain() {
            for targets in fp.call_targets.values_mut() {
                let mut new_targets: HashMap<FuncId, u64> = HashMap::with_capacity(targets.len());
                for (callee, c) in targets.drain() {
                    *new_targets.entry(map(callee)).or_insert(0) += c;
                }
                *targets = new_targets;
            }
            match rekeyed.entry(map(old)) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(fp);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().merge(&fp),
            }
        }
        funcs = rekeyed;

        let map_ictx = |ictx: jit::InlineCtx| ictx.map(|(caller, site)| (map(caller), site));
        let mut branches: HashMap<_, BranchCount> = HashMap::with_capacity(ctx.branches.len());
        for ((ictx, f, at), bc) in ctx.branches.drain() {
            branches
                .entry((map_ictx(ictx), map(f), at))
                .or_default()
                .merge(&bc);
        }
        ctx.branches = branches;
        let mut entries: HashMap<_, u64> = HashMap::with_capacity(ctx.entries.len());
        for ((ictx, callee), c) in ctx.entries.drain() {
            *entries.entry((map_ictx(ictx), map(callee))).or_insert(0) += c;
        }
        ctx.entries = entries;
    }
    tier.funcs = funcs;
}

/// Refreshes a repaired profile's stored signatures to the current build.
fn refresh_signatures(repo: &Repo, fid: FuncId, fp: &mut FuncProfile, cfg: &Cfg) {
    let func = repo.func(fid);
    fp.name_hash = bytecode::fnv_str(repo.str(func.name));
    fp.block_opcode_hashes = cfg.block_opcode_hashes(func);
    fp.block_neighbor_hashes = cfg.block_neighbor_hashes(func);
    fp.block_anchor_hashes = cfg.block_anchor_hashes(func, repo);
}

/// Drops every branch counter of `fid` and installs the synthesized
/// splits; returns how many were installed.
fn replace_branches(ctx: &mut CtxProfile, fid: FuncId, branches: &[(u32, u64, u64)]) -> u64 {
    ctx.branches.retain(|&(_, f, _), _| f != fid);
    for &(at, taken, not_taken) in branches {
        ctx.branches
            .insert((None, fid, at), BranchCount { taken, not_taken });
    }
    branches.len() as u64
}

/// Drops instruction-indexed entries of one function profile whose
/// profile point doesn't exist in the current code. Returns how many.
fn prune_func_profile(repo: &Repo, graph: &CallGraph, fid: FuncId, fp: &mut FuncProfile) -> usize {
    let func = repo.func(fid);
    let func_count = repo.funcs().len();
    let class_count = repo.classes().len();
    let mut pruned = 0;

    let is_call = |at: u32| {
        matches!(
            func.code.get(at as usize),
            Some(Instr::Call { .. } | Instr::CallMethod { .. })
        )
    };
    fp.call_targets.retain(|&site, targets| {
        if !is_call(site) {
            pruned += 1;
            return false;
        }
        let before = targets.len();
        targets
            .retain(|&callee, _| callee.index() < func_count && graph.can_call(fid, site, callee));
        pruned += before - targets.len();
        !targets.is_empty()
    });

    let before = fp.types.len();
    fp.types.retain(|&(at, slot), _| {
        if at == PARAM_SITE {
            (slot as u16) < func.params && slot < 8
        } else {
            slot <= 1 && matches!(func.code.get(at as usize), Some(Instr::Bin(_)))
        }
    });
    pruned += before - fp.types.len();

    fp.prop_site_classes.retain(|&site, classes| {
        let ok = matches!(
            func.code.get(site as usize),
            Some(Instr::GetProp(_) | Instr::SetProp(_))
        );
        if !ok {
            pruned += 1;
            return false;
        }
        let before = classes.len();
        classes.retain(|c, _| c.index() < class_count);
        pruned += before - classes.len();
        !classes.is_empty()
    });

    pruned
}

fn prune_prop_tables(repo: &Repo, tier: &mut TierProfile) -> usize {
    let class_count = repo.classes().len();
    let str_count = repo.string_count();
    let before = tier.prop_counts.len() + tier.prop_pairs.len();
    tier.prop_counts
        .retain(|&(c, p), _| c.index() < class_count && p.index() < str_count);
    tier.prop_pairs.retain(|&(c, a, b), _| {
        c.index() < class_count && a.index() < str_count && b.index() < str_count
    });
    before - (tier.prop_counts.len() + tier.prop_pairs.len())
}

fn prune_ctx(repo: &Repo, graph: &CallGraph, ctx: &mut CtxProfile) -> usize {
    let func_count = repo.funcs().len();
    let ctx_ok = |ictx: &jit::InlineCtx| match *ictx {
        None => true,
        Some((caller, site)) => {
            caller.index() < func_count
                && matches!(
                    repo.func(caller).code.get(site as usize),
                    Some(Instr::Call { .. } | Instr::CallMethod { .. })
                )
        }
    };
    let before = ctx.branches.len() + ctx.entries.len();
    ctx.branches.retain(|&(ref ictx, f, at), _| {
        ctx_ok(ictx)
            && f.index() < func_count
            && matches!(
                repo.func(f).code.get(at as usize),
                Some(Instr::JmpZ(_) | Instr::JmpNZ(_))
            )
    });
    ctx.entries.retain(|&(ref ictx, callee), _| {
        if callee.index() >= func_count || !ctx_ok(ictx) {
            return false;
        }
        match *ictx {
            None => true,
            Some((caller, site)) => graph.can_call(caller, site, callee),
        }
    });
    before - (ctx.branches.len() + ctx.entries.len())
}

/// Convenience for tests and tooling: how much counter mass two tier
/// profiles share per function (1.0 = identical distribution support).
pub fn shared_mass(a: &TierProfile, b: &TierProfile) -> f64 {
    let mut shared = 0u64;
    let mut total = 0u64;
    for (f, pa) in &a.funcs {
        let ta: u64 = pa.block_counts.iter().sum();
        total += ta;
        if let Some(pb) = b.funcs.get(f) {
            shared += pa
                .block_counts
                .iter()
                .zip(&pb.block_counts)
                .map(|(&x, &y)| x.min(y))
                .sum::<u64>();
        }
    }
    if total == 0 {
        1.0
    } else {
        shared as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::{lint_profile_with, LintOptions, ProfileView};
    use jit::ProfileCollector;
    use vm::{Value, Vm};

    use bytecode::{BinOp, FuncBuilder, RepoBuilder};

    /// Builds one program in several "push" variants:
    /// * `guard` — v2 inserts a prologue guard block into `f`,
    /// * `shift` — a dummy function is defined first, renumbering every id,
    /// * `rename` — `f` is defined under a different name.
    fn build_repo_variant(guard: bool, shift: bool, f_name: &str) -> Repo {
        let mut b = RepoBuilder::new();
        let u = b.declare_unit("p.hl");
        if shift {
            let mut d = FuncBuilder::new("dummy", 0);
            d.emit(Instr::Null);
            d.emit(Instr::Ret);
            b.define_func(u, d);
        }
        let mut g = FuncBuilder::new("g", 1);
        let zero = g.new_label();
        g.emit(Instr::GetL(0));
        g.emit_jmp_z(zero);
        g.emit(Instr::Int(1));
        g.emit(Instr::Ret);
        g.bind(zero);
        g.emit(Instr::Int(0));
        g.emit(Instr::Ret);
        let gid = b.define_func(u, g);

        let mut f = FuncBuilder::new(f_name, 1);
        let i = f.new_local();
        if guard {
            // New guard: if (!n) return null — a new entry block shape.
            let go = f.new_label();
            f.emit(Instr::GetL(0));
            f.emit_jmp_nz(go);
            f.emit(Instr::Null);
            f.emit(Instr::Ret);
            f.bind(go);
        }
        let top = f.new_label();
        let out = f.new_label();
        f.emit(Instr::Int(0));
        f.emit(Instr::SetL(i));
        f.bind(top);
        f.emit(Instr::GetL(i));
        f.emit(Instr::GetL(0));
        f.emit(Instr::Bin(BinOp::Lt));
        f.emit_jmp_z(out);
        f.emit(Instr::GetL(i));
        f.emit(Instr::Int(2));
        f.emit(Instr::Bin(BinOp::Mod));
        f.emit_raw(Instr::Call { func: gid, argc: 1 });
        f.emit(Instr::Pop);
        f.emit(Instr::IncL(i, 1));
        f.emit(Instr::Pop);
        f.emit_jmp(top);
        f.bind(out);
        f.emit(Instr::Null);
        f.emit(Instr::Ret);
        b.define_func(u, f);
        b.finish()
    }

    fn build_repo(v2: bool) -> Repo {
        build_repo_variant(v2, false, "f")
    }

    fn collect(repo: &Repo, n: i64) -> (TierProfile, CtxProfile) {
        let f = repo.func_by_name("f").unwrap().id;
        let mut vm = Vm::new(repo);
        let mut col = ProfileCollector::new(repo);
        vm.call_observed(f, &[Value::Int(n)], &mut col).unwrap();
        col.end_request();
        (col.tier, col.ctx)
    }

    fn strict_lint_errors(repo: &Repo, tier: &TierProfile, ctx: &CtxProfile) -> usize {
        lint_profile_with(
            repo,
            &ProfileView {
                tier,
                ctx,
                unit_order: &[],
                prop_orders: &[],
                func_order: &[],
            },
            &LintOptions {
                flow_conservation: true,
                type_feasibility: false,
            },
        )
        .error_count()
    }

    #[test]
    fn fresh_profile_is_untouched() {
        let repo = build_repo(false);
        let (mut tier, mut ctx) = collect(&repo, 10);
        let report = repair_profile(&repo, &mut tier, &mut ctx);
        assert!(report.untouched(), "got {report:?}");
        assert!(report.stats.funcs_fresh >= 2, "got {:?}", report.stats);
    }

    #[test]
    fn stale_profile_is_remapped_onto_new_cfg() {
        let v1 = build_repo(false);
        let v2 = build_repo(true);
        let f2 = v2.func_by_name("f").unwrap().id;
        // Profile collected on v1, consumed against v2.
        let (mut tier, mut ctx) = collect(&v1, 10);
        let loop_mass_before: u64 = tier.funcs[&f2].block_counts.iter().sum();

        let report = repair_profile(&v2, &mut tier, &mut ctx);
        assert!(report.repaired.contains(&f2), "got {report:?}");
        assert!(report.dropped.is_empty());
        assert!(report.stats.blocks_exact > 0, "got {:?}", report.stats);

        let fp = &tier.funcs[&f2];
        let cfg = Cfg::build(v2.func(f2));
        assert_eq!(fp.block_counts.len(), cfg.len());
        assert_eq!(fp.block_hashes, cfg.block_hashes(v2.func(f2), &v2));
        // The loop blocks are structurally unchanged, so their counter
        // mass survives the remap.
        let mass_after: u64 = fp.block_counts.iter().sum();
        assert!(
            mass_after * 2 >= loop_mass_before,
            "{mass_after} vs {loop_mass_before}"
        );

        // And the repaired profile passes the *strict* lint: inference
        // produces flow-consistent counts, so flow conservation stays on.
        assert_eq!(strict_lint_errors(&v2, &tier, &ctx), 0);
    }

    #[test]
    fn renumbered_ids_are_recovered_by_name() {
        let v1 = build_repo_variant(false, false, "f");
        let v2 = build_repo_variant(false, true, "f");
        let old_f = v1.func_by_name("f").unwrap().id;
        let new_f = v2.func_by_name("f").unwrap().id;
        assert_ne!(old_f, new_f, "the push renumbered ids");
        let (mut tier, mut ctx) = collect(&v1, 10);
        let mass_before: u64 = tier.funcs[&old_f].block_counts.iter().sum();

        let report = repair_profile(&v2, &mut tier, &mut ctx);
        assert!(report.dropped.is_empty(), "got {report:?}");
        let fp = &tier.funcs[&new_f];
        // Bodies only differ in the renumbered callee id, so the opcode
        // rung matches every block and flow reproduces the counts exactly.
        let mass_after: u64 = fp.block_counts.iter().sum();
        assert_eq!(mass_after, mass_before);
        assert_eq!(strict_lint_errors(&v2, &tier, &ctx), 0);
    }

    #[test]
    fn renamed_function_is_recovered_by_body_fingerprint() {
        let v1 = build_repo_variant(false, false, "f");
        let v2 = build_repo_variant(false, false, "f_renamed");
        let old_f = v1.func_by_name("f").unwrap().id;
        let new_f = v2.func_by_name("f_renamed").unwrap().id;
        let (mut tier, mut ctx) = collect(&v1, 10);
        let mass_before: u64 = tier.funcs[&old_f].block_counts.iter().sum();

        let report = repair_profile(&v2, &mut tier, &mut ctx);
        assert_eq!(report.stats.funcs_renamed, 1, "got {report:?}");
        assert!(report.dropped.is_empty(), "got {report:?}");
        let mass_after: u64 = tier.funcs[&new_f].block_counts.iter().sum();
        assert_eq!(mass_after, mass_before);
        assert_eq!(strict_lint_errors(&v2, &tier, &ctx), 0);
    }

    #[test]
    fn unmatched_mass_drops_the_function() {
        let repo = build_repo(false);
        let (mut tier, mut ctx) = collect(&repo, 10);
        let f = repo.func_by_name("f").unwrap().id;
        // Pretend the profile came from a totally different function body:
        // same name, but no signature at any ladder level matches.
        let fp = tier.funcs.get_mut(&f).unwrap();
        fp.block_counts.push(99);
        for sig in [
            &mut fp.block_hashes,
            &mut fp.block_opcode_hashes,
            &mut fp.block_neighbor_hashes,
            &mut fp.block_anchor_hashes,
        ] {
            sig.push(12345);
            for h in sig.iter_mut() {
                *h ^= 0xffff_ffff;
            }
        }
        let report = repair_profile(&repo, &mut tier, &mut ctx);
        assert!(report.dropped.contains(&f), "got {report:?}");
        assert!(!tier.funcs.contains_key(&f));
        assert!(report.stats.mass_dropped > 0);
    }

    #[test]
    fn legacy_greedy_truncation_is_reported_as_pruned() {
        // More counters than hashes: the greedy scan never examines the
        // tail — it must be counted, not silently dropped.
        let (counts, matched, skipped) = remap_counts(&[5, 6, 7], &[42], &[42]);
        assert_eq!(counts, vec![5]);
        assert_eq!(matched, 5);
        assert_eq!(skipped, 2);
        // Cursor exhaustion mid-scan leaves the remaining entries
        // unexamined too.
        let (_, _, skipped) = remap_counts(&[1, 2, 3], &[9, 9, 9], &[9]);
        assert_eq!(skipped, 2);
    }

    #[test]
    fn drop_stale_mode_drops_what_full_mode_repairs() {
        let v1 = build_repo(false);
        let v2 = build_repo(true);
        let f2 = v2.func_by_name("f").unwrap().id;
        let (mut tier, mut ctx) = collect(&v1, 10);
        let report = repair_profile_with(
            &v2,
            &mut tier,
            &mut ctx,
            &RepairOptions {
                mode: MatchMode::DropStale,
            },
        );
        assert!(report.dropped.contains(&f2), "got {report:?}");
        assert!(!tier.funcs.contains_key(&f2));
    }

    #[test]
    fn dangling_functions_are_dropped() {
        let repo = build_repo(false);
        let (mut tier, mut ctx) = collect(&repo, 5);
        tier.funcs.insert(FuncId::new(1000), FuncProfile::default());
        let report = repair_profile(&repo, &mut tier, &mut ctx);
        assert_eq!(report.dropped, vec![FuncId::new(1000)]);
        assert!(!tier.funcs.contains_key(&FuncId::new(1000)));
    }

    #[test]
    fn phantom_sites_are_pruned() {
        let repo = build_repo(false);
        let (mut tier, mut ctx) = collect(&repo, 5);
        let f = repo.func_by_name("f").unwrap().id;
        let fp = tier.funcs.get_mut(&f).unwrap();
        // Call-target data on a non-call instruction, type data past the
        // end of the function, branch data on a non-branch.
        fp.call_targets.insert(0, [(f, 3)].into_iter().collect());
        fp.types.insert((9999, 0), Default::default());
        ctx.branches.insert((None, f, 0), Default::default());
        let report = repair_profile(&repo, &mut tier, &mut ctx);
        assert!(report.pruned >= 3, "got {report:?}");
        let fp = &tier.funcs[&f];
        assert!(!fp.call_targets.contains_key(&0));
        assert!(!fp.types.contains_key(&(9999, 0)));
        assert!(!ctx.branches.contains_key(&(None, f, 0)));
    }

    #[test]
    fn impossible_arcs_are_pruned_from_entries() {
        let repo = build_repo(false);
        let (mut tier, mut ctx) = collect(&repo, 5);
        let f = repo.func_by_name("f").unwrap().id;
        let g = repo.func_by_name("g").unwrap().id;
        // Find the real call site in f (the Call to g).
        let site = repo
            .func(f)
            .code
            .iter()
            .position(|i| matches!(i, Instr::Call { .. }))
            .unwrap() as u32;
        // Claim the site also dispatched to f — statically impossible.
        ctx.entries.insert((Some((f, site)), f), 7);
        let valid_before = ctx.entries.contains_key(&(Some((f, site)), g));
        let report = repair_profile(&repo, &mut tier, &mut ctx);
        assert!(report.pruned >= 1, "got {report:?}");
        assert!(!ctx.entries.contains_key(&(Some((f, site)), f)));
        // The genuine arc survives.
        assert_eq!(
            ctx.entries.contains_key(&(Some((f, site)), g)),
            valid_before
        );
    }

    #[test]
    fn shared_mass_of_identical_profiles_is_one() {
        let repo = build_repo(false);
        let (tier, _) = collect(&repo, 10);
        assert!((shared_mass(&tier, &tier) - 1.0).abs() < 1e-9);
        let empty = TierProfile::default();
        assert_eq!(shared_mass(&tier, &empty), 0.0);
    }
}
