//! Stale-profile repair: remapping counters collected against an older
//! build onto the current code.
//!
//! At scale, a consumer's repo is often one push ahead of the package it
//! downloads (the paper tolerates this on purpose — §VII-C shows profiles
//! stay useful for days of pushes). Most functions are untouched by a
//! push, so most of the package is still exact; the functions that *did*
//! change have counters indexed by block/instruction positions that no
//! longer exist. This module salvages the package instead of discarding
//! it: per-block structural hashes ([`bytecode::Cfg::block_hashes`])
//! identify which blocks survived the edit, counters are remapped onto
//! the current CFG by greedy in-order hash matching, functions whose
//! counter mass mostly lands on vanished blocks are dropped, and
//! instruction-indexed counters (call targets, types, branch outcomes)
//! that no longer point at a matching profile point are pruned.

use bytecode::{Cfg, FuncId, Instr, Repo};
use jit::{CtxProfile, FuncProfile, TierProfile, PARAM_SITE};

use crate::callgraph::CallGraph;

/// Minimum fraction of a function's counter mass that must land on
/// hash-matched blocks for the remap to be trusted.
const MIN_MATCHED_MASS: f64 = 0.5;

/// What [`repair_profile`] did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Functions whose block counters were remapped onto a changed CFG.
    pub repaired: Vec<FuncId>,
    /// Functions dropped entirely (dangling id, or too little counter
    /// mass survived the remap).
    pub dropped: Vec<FuncId>,
    /// Instruction-indexed counter entries pruned because their profile
    /// point no longer exists (or can't produce them).
    pub pruned: usize,
}

impl RepairReport {
    /// Whether the profile was already fully consistent.
    pub fn untouched(&self) -> bool {
        self.repaired.is_empty() && self.dropped.is_empty() && self.pruned == 0
    }
}

/// Remaps `old` counters (with hashes `old_hashes`) onto blocks of the
/// current CFG by greedy in-order hash matching. Returns the new counter
/// vector and the matched counter mass.
fn remap_counts(old: &[u64], old_hashes: &[u64], cur_hashes: &[u64]) -> (Vec<u64>, u64) {
    let mut counts = vec![0u64; cur_hashes.len()];
    let mut matched = 0u64;
    let mut cursor = 0usize;
    for (i, &h) in old_hashes.iter().enumerate() {
        let Some(&c) = old.get(i) else { break };
        if let Some(j) = cur_hashes[cursor..].iter().position(|&ch| ch == h) {
            let j = cursor + j;
            counts[j] = c;
            matched += c;
            cursor = j + 1;
        }
        if cursor >= cur_hashes.len() {
            break;
        }
    }
    (counts, matched)
}

/// Repairs `tier` and `ctx` in place against `repo`.
///
/// After a successful repair the profile passes the structural lint rules
/// (dangling ids, stale shapes, phantom sites, impossible arcs). Flow
/// conservation is *not* restored — remapped counters approximate the new
/// code — so callers should re-lint with
/// [`crate::lint::LintOptions::flow_conservation`] off.
pub fn repair_profile(repo: &Repo, tier: &mut TierProfile, ctx: &mut CtxProfile) -> RepairReport {
    let mut report = RepairReport::default();
    let graph = CallGraph::build(repo);
    let func_count = repo.funcs().len();

    // Dangling functions can't be remapped onto anything.
    let mut dangling: Vec<FuncId> = tier
        .funcs
        .keys()
        .copied()
        .filter(|f| f.index() >= func_count)
        .collect();
    dangling.sort_by_key(|f| f.index());
    for f in dangling {
        tier.funcs.remove(&f);
        report.dropped.push(f);
    }

    let mut stale_drops = Vec::new();
    for (&fid, fp) in tier.funcs.iter_mut() {
        let func = repo.func(fid);
        let cfg = Cfg::build(func);
        let cur_hashes = cfg.block_hashes(func);
        let fresh = fp.block_counts.len() == cfg.len()
            && (fp.block_hashes.is_empty() || fp.block_hashes == cur_hashes);
        if !fresh {
            // Without stored hashes there is nothing to match on.
            if fp.block_hashes.len() != fp.block_counts.len() || fp.block_hashes.is_empty() {
                stale_drops.push(fid);
                continue;
            }
            let total: u64 = fp.block_counts.iter().sum();
            let (counts, matched) = remap_counts(&fp.block_counts, &fp.block_hashes, &cur_hashes);
            if total > 0 && (matched as f64) < MIN_MATCHED_MASS * total as f64 {
                stale_drops.push(fid);
                continue;
            }
            fp.block_counts = counts;
            fp.block_hashes = cur_hashes;
            report.repaired.push(fid);
        }
        report.pruned += prune_func_profile(repo, &graph, fid, fp);
    }
    stale_drops.sort_by_key(|f| f.index());
    for f in &stale_drops {
        tier.funcs.remove(f);
    }
    report.dropped.extend(stale_drops);

    report.pruned += prune_prop_tables(repo, tier);
    report.pruned += prune_ctx(repo, &graph, ctx);
    report.repaired.sort_by_key(|f| f.index());
    // Counters were dropped/remapped in place; any cached heat ranking on
    // the profile is stale now.
    tier.mark_counters_dirty();
    report
}

/// Drops instruction-indexed entries of one function profile whose
/// profile point doesn't exist in the current code. Returns how many.
fn prune_func_profile(repo: &Repo, graph: &CallGraph, fid: FuncId, fp: &mut FuncProfile) -> usize {
    let func = repo.func(fid);
    let func_count = repo.funcs().len();
    let class_count = repo.classes().len();
    let mut pruned = 0;

    let is_call = |at: u32| {
        matches!(
            func.code.get(at as usize),
            Some(Instr::Call { .. } | Instr::CallMethod { .. })
        )
    };
    fp.call_targets.retain(|&site, targets| {
        if !is_call(site) {
            pruned += 1;
            return false;
        }
        let before = targets.len();
        targets
            .retain(|&callee, _| callee.index() < func_count && graph.can_call(fid, site, callee));
        pruned += before - targets.len();
        !targets.is_empty()
    });

    let before = fp.types.len();
    fp.types.retain(|&(at, slot), _| {
        if at == PARAM_SITE {
            (slot as u16) < func.params && slot < 8
        } else {
            slot <= 1 && matches!(func.code.get(at as usize), Some(Instr::Bin(_)))
        }
    });
    pruned += before - fp.types.len();

    fp.prop_site_classes.retain(|&site, classes| {
        let ok = matches!(
            func.code.get(site as usize),
            Some(Instr::GetProp(_) | Instr::SetProp(_))
        );
        if !ok {
            pruned += 1;
            return false;
        }
        let before = classes.len();
        classes.retain(|c, _| c.index() < class_count);
        pruned += before - classes.len();
        !classes.is_empty()
    });

    pruned
}

fn prune_prop_tables(repo: &Repo, tier: &mut TierProfile) -> usize {
    let class_count = repo.classes().len();
    let str_count = repo.string_count();
    let before = tier.prop_counts.len() + tier.prop_pairs.len();
    tier.prop_counts
        .retain(|&(c, p), _| c.index() < class_count && p.index() < str_count);
    tier.prop_pairs.retain(|&(c, a, b), _| {
        c.index() < class_count && a.index() < str_count && b.index() < str_count
    });
    before - (tier.prop_counts.len() + tier.prop_pairs.len())
}

fn prune_ctx(repo: &Repo, graph: &CallGraph, ctx: &mut CtxProfile) -> usize {
    let func_count = repo.funcs().len();
    let ctx_ok = |ictx: &jit::InlineCtx| match *ictx {
        None => true,
        Some((caller, site)) => {
            caller.index() < func_count
                && matches!(
                    repo.func(caller).code.get(site as usize),
                    Some(Instr::Call { .. } | Instr::CallMethod { .. })
                )
        }
    };
    let before = ctx.branches.len() + ctx.entries.len();
    ctx.branches.retain(|&(ref ictx, f, at), _| {
        ctx_ok(ictx)
            && f.index() < func_count
            && matches!(
                repo.func(f).code.get(at as usize),
                Some(Instr::JmpZ(_) | Instr::JmpNZ(_))
            )
    });
    ctx.entries.retain(|&(ref ictx, callee), _| {
        if callee.index() >= func_count || !ctx_ok(ictx) {
            return false;
        }
        match *ictx {
            None => true,
            Some((caller, site)) => graph.can_call(caller, site, callee),
        }
    });
    before - (ctx.branches.len() + ctx.entries.len())
}

/// Convenience for tests and tooling: how much counter mass two tier
/// profiles share per function (1.0 = identical distribution support).
pub fn shared_mass(a: &TierProfile, b: &TierProfile) -> f64 {
    let mut shared = 0u64;
    let mut total = 0u64;
    for (f, pa) in &a.funcs {
        let ta: u64 = pa.block_counts.iter().sum();
        total += ta;
        if let Some(pb) = b.funcs.get(f) {
            shared += pa
                .block_counts
                .iter()
                .zip(&pb.block_counts)
                .map(|(&x, &y)| x.min(y))
                .sum::<u64>();
        }
    }
    if total == 0 {
        1.0
    } else {
        shared as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::{lint_profile_with, LintOptions, ProfileView};
    use bytecode::{BinOp, FuncBuilder, Instr, RepoBuilder};
    use jit::ProfileCollector;
    use vm::{Value, Vm};

    /// Two builds of the same program: v2 inserts a prologue block into f
    /// and leaves g untouched.
    fn build_repo(v2: bool) -> Repo {
        let mut b = RepoBuilder::new();
        let u = b.declare_unit("p.hl");
        let mut g = FuncBuilder::new("g", 1);
        let zero = g.new_label();
        g.emit(Instr::GetL(0));
        g.emit_jmp_z(zero);
        g.emit(Instr::Int(1));
        g.emit(Instr::Ret);
        g.bind(zero);
        g.emit(Instr::Int(0));
        g.emit(Instr::Ret);
        let gid = b.define_func(u, g);

        let mut f = FuncBuilder::new("f", 1);
        let i = f.new_local();
        if v2 {
            // New guard: if (!n) return null — a new entry block shape.
            let go = f.new_label();
            f.emit(Instr::GetL(0));
            f.emit_jmp_nz(go);
            f.emit(Instr::Null);
            f.emit(Instr::Ret);
            f.bind(go);
        }
        let top = f.new_label();
        let out = f.new_label();
        f.emit(Instr::Int(0));
        f.emit(Instr::SetL(i));
        f.bind(top);
        f.emit(Instr::GetL(i));
        f.emit(Instr::GetL(0));
        f.emit(Instr::Bin(BinOp::Lt));
        f.emit_jmp_z(out);
        f.emit(Instr::GetL(i));
        f.emit(Instr::Int(2));
        f.emit(Instr::Bin(BinOp::Mod));
        f.emit_raw(Instr::Call { func: gid, argc: 1 });
        f.emit(Instr::Pop);
        f.emit(Instr::IncL(i, 1));
        f.emit(Instr::Pop);
        f.emit_jmp(top);
        f.bind(out);
        f.emit(Instr::Null);
        f.emit(Instr::Ret);
        b.define_func(u, f);
        b.finish()
    }

    fn collect(repo: &Repo, n: i64) -> (TierProfile, CtxProfile) {
        let f = repo.func_by_name("f").unwrap().id;
        let mut vm = Vm::new(repo);
        let mut col = ProfileCollector::new(repo);
        vm.call_observed(f, &[Value::Int(n)], &mut col).unwrap();
        col.end_request();
        (col.tier, col.ctx)
    }

    #[test]
    fn fresh_profile_is_untouched() {
        let repo = build_repo(false);
        let (mut tier, mut ctx) = collect(&repo, 10);
        let report = repair_profile(&repo, &mut tier, &mut ctx);
        assert!(report.untouched(), "got {report:?}");
    }

    #[test]
    fn stale_profile_is_remapped_onto_new_cfg() {
        let v1 = build_repo(false);
        let v2 = build_repo(true);
        let f2 = v2.func_by_name("f").unwrap().id;
        // Profile collected on v1, consumed against v2.
        let (mut tier, mut ctx) = collect(&v1, 10);
        let loop_mass_before: u64 = tier.funcs[&f2].block_counts.iter().sum();

        let report = repair_profile(&v2, &mut tier, &mut ctx);
        assert!(report.repaired.contains(&f2), "got {report:?}");
        assert!(report.dropped.is_empty());

        let fp = &tier.funcs[&f2];
        let cfg = Cfg::build(v2.func(f2));
        assert_eq!(fp.block_counts.len(), cfg.len());
        assert_eq!(fp.block_hashes, cfg.block_hashes(v2.func(f2)));
        // The loop blocks are structurally unchanged, so their counter
        // mass survives the remap.
        let mass_after: u64 = fp.block_counts.iter().sum();
        assert!(
            mass_after * 2 >= loop_mass_before,
            "{mass_after} vs {loop_mass_before}"
        );

        // And the repaired profile passes the structural lint (flow is
        // approximate after a remap, so it stays off).
        let g_ok = lint_profile_with(
            &v2,
            &ProfileView {
                tier: &tier,
                ctx: &ctx,
                unit_order: &[],
                prop_orders: &[],
                func_order: &[],
            },
            &LintOptions {
                flow_conservation: false,
                type_feasibility: false,
            },
        );
        assert_eq!(g_ok.error_count(), 0, "got: {:?}", g_ok.diagnostics);
    }

    #[test]
    fn unmatched_mass_drops_the_function() {
        let repo = build_repo(false);
        let (mut tier, mut ctx) = collect(&repo, 10);
        let f = repo.func_by_name("f").unwrap().id;
        // Pretend the profile came from a totally different function body:
        // same lengths, but no hash matches the current CFG.
        let fp = tier.funcs.get_mut(&f).unwrap();
        fp.block_counts.push(99);
        fp.block_hashes.push(12345);
        for h in fp.block_hashes.iter_mut() {
            *h ^= 0xffff_ffff;
        }
        let report = repair_profile(&repo, &mut tier, &mut ctx);
        assert!(report.dropped.contains(&f), "got {report:?}");
        assert!(!tier.funcs.contains_key(&f));
    }

    #[test]
    fn dangling_functions_are_dropped() {
        let repo = build_repo(false);
        let (mut tier, mut ctx) = collect(&repo, 5);
        tier.funcs.insert(FuncId::new(1000), FuncProfile::default());
        let report = repair_profile(&repo, &mut tier, &mut ctx);
        assert_eq!(report.dropped, vec![FuncId::new(1000)]);
        assert!(!tier.funcs.contains_key(&FuncId::new(1000)));
    }

    #[test]
    fn phantom_sites_are_pruned() {
        let repo = build_repo(false);
        let (mut tier, mut ctx) = collect(&repo, 5);
        let f = repo.func_by_name("f").unwrap().id;
        let fp = tier.funcs.get_mut(&f).unwrap();
        // Call-target data on a non-call instruction, type data past the
        // end of the function, branch data on a non-branch.
        fp.call_targets.insert(0, [(f, 3)].into_iter().collect());
        fp.types.insert((9999, 0), Default::default());
        ctx.branches.insert((None, f, 0), Default::default());
        let report = repair_profile(&repo, &mut tier, &mut ctx);
        assert!(report.pruned >= 3, "got {report:?}");
        let fp = &tier.funcs[&f];
        assert!(!fp.call_targets.contains_key(&0));
        assert!(!fp.types.contains_key(&(9999, 0)));
        assert!(!ctx.branches.contains_key(&(None, f, 0)));
    }

    #[test]
    fn impossible_arcs_are_pruned_from_entries() {
        let repo = build_repo(false);
        let (mut tier, mut ctx) = collect(&repo, 5);
        let f = repo.func_by_name("f").unwrap().id;
        let g = repo.func_by_name("g").unwrap().id;
        // Find the real call site in f (the Call to g).
        let site = repo
            .func(f)
            .code
            .iter()
            .position(|i| matches!(i, Instr::Call { .. }))
            .unwrap() as u32;
        // Claim the site also dispatched to f — statically impossible.
        ctx.entries.insert((Some((f, site)), f), 7);
        let valid_before = ctx.entries.contains_key(&(Some((f, site)), g));
        let report = repair_profile(&repo, &mut tier, &mut ctx);
        assert!(report.pruned >= 1, "got {report:?}");
        assert!(!ctx.entries.contains_key(&(Some((f, site)), f)));
        // The genuine arc survives.
        assert_eq!(
            ctx.entries.contains_key(&(Some((f, site)), g)),
            valid_before
        );
    }

    #[test]
    fn shared_mass_of_identical_profiles_is_one() {
        let repo = build_repo(false);
        let (tier, _) = collect(&repo, 10);
        assert!((shared_mass(&tier, &tier) - 1.0).abs() < 1e-9);
        let empty = TierProfile::default();
        assert_eq!(shared_mass(&tier, &empty), 0.0);
    }
}
