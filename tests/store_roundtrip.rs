//! Property tests for the content-addressed chunk store: across randomly
//! churned releases, chunking must be lossless and a delta push must be
//! *sufficient* — the previous release's cache plus exactly the chunks the
//! delta ships reassembles the new package byte-identically.

use hhvm_jumpstart_repro::{jit, jumpstart, workload};

use jit::JitOptions;
use jumpstart::{
    build_package, chunk_package, crc32, delta_against, reassemble, ChunkPool, JumpStartOptions,
    ProfilePackage, SeederInputs,
};
use proptest::prelude::*;
use workload::{generate_release, profile_run, App, AppParams, ChurnParams, RequestMix};

/// One seeder's package for a release (same profiling seed every release,
/// mirroring `jsstore`'s consumer-cache setup).
fn package_for(app: &App, requests: usize) -> ProfilePackage {
    let mix = RequestMix::new(app, 0, 0);
    let run = profile_run(app, &mix, requests, 21);
    build_package(
        SeederInputs {
            repo: &app.repo,
            tier: run.tier,
            ctx: run.ctx,
            unit_order: run.unit_order,
            requests: run.requests,
            region: 0,
            bucket: 0,
            seeder_id: 1,
            now_ms: 0,
        },
        &JumpStartOptions::default(),
        &JitOptions::default(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For any churn seed and rate, (a) a fresh chunk pool reassembles the
    /// package byte-identically, (b) the prior release's cache plus only
    /// the delta's missing chunks does too, and (c) the reassembled bytes
    /// decode back to the original package.
    #[test]
    fn chunked_roundtrip_is_lossless_across_churn(seed in 0u64..10_000, rate_idx in 0usize..4) {
        let rate = [0.0, 0.05, 0.1, 0.2][rate_idx];
        let params = AppParams::tiny();
        let (base, _) = generate_release(&params, &ChurnParams::none());
        let (cur, _) = generate_release(&params, &ChurnParams { seed, rate });

        let base_pkg = package_for(&base, 120);
        let base_cp = chunk_package(&base_pkg, base.repo.funcs().len());
        let mut cache = ChunkPool::new();
        for c in &base_cp.chunks {
            cache.insert(c);
        }

        let pkg = package_for(&cur, 120);
        let monolithic = pkg.serialize();
        let cp = chunk_package(&pkg, cur.repo.funcs().len());

        // (a) Fresh pool: byte-identical reassembly.
        let mut fresh = ChunkPool::new();
        for c in &cp.chunks {
            fresh.insert(c);
        }
        let out = reassemble(&cp.manifest, &fresh).expect("fresh pool reassembles");
        prop_assert_eq!(crc32(&out), crc32(&monolithic));
        prop_assert_eq!(out.as_ref(), monolithic.as_ref());

        // (b) Delta sufficiency: ship only what the receiver lacks.
        let delta = delta_against(&cp.manifest, &cache);
        let mut applied = cache;
        let mut shipped = 0usize;
        for c in &cp.chunks {
            if !applied.contains(c.id) {
                applied.insert(c);
                shipped += 1;
            }
        }
        prop_assert_eq!(shipped, delta.chunks_sent);
        let out2 = reassemble(&cp.manifest, &applied).expect("cache + delta reassembles");
        prop_assert_eq!(out2.as_ref(), monolithic.as_ref());

        // (c) The reassembled bytes decode to the original package.
        let decoded = ProfilePackage::deserialize(&out).expect("reassembly decodes");
        prop_assert_eq!(&decoded, &pkg);
    }
}
