//! Integration tests spanning every crate: source → bytecode → profile →
//! package → consumer → replay, plus the fleet-level behaviors the paper's
//! evaluation depends on.

use hhvm_jumpstart_repro::{fleet, jit, jumpstart, vm, workload};

use fleet::{
    build_app_model, measure_steady_state, run_crashloop, simulate_warmup, CrashLoopParams,
    ServerConfig, SteadyConfig, SteadyParams, WarmupParams,
};
use jit::JitOptions;
use jumpstart::{
    build_package, consume, JumpStartOptions, ProfilePackage, SeederInputs, Validator,
};
use vm::{Value, Vm};
use workload::{generate, profile_run, AppParams, RequestMix};

fn lab() -> (workload::App, RequestMix, workload::ProfileRun) {
    let app = generate(&AppParams::tiny());
    let mix = RequestMix::new(&app, 0, 0);
    let truth = profile_run(&app, &mix, 200, 33);
    (app, mix, truth)
}

fn lax_opts() -> JumpStartOptions {
    JumpStartOptions {
        min_funcs_profiled: 5,
        min_counter_mass: 100,
        min_requests: 10,
        ..Default::default()
    }
}

fn package_of(
    app: &workload::App,
    truth: &workload::ProfileRun,
    opts: &JumpStartOptions,
) -> ProfilePackage {
    build_package(
        SeederInputs {
            repo: &app.repo,
            tier: truth.tier.clone(),
            ctx: truth.ctx.clone(),
            unit_order: truth.unit_order.clone(),
            requests: truth.requests,
            region: 0,
            bucket: 0,
            seeder_id: 1,
            now_ms: 0,
        },
        opts,
        &JitOptions::default(),
    )
}

#[test]
fn full_pipeline_source_to_replay() {
    let (app, _mix, truth) = lab();
    let opts = lax_opts();
    let pkg = package_of(&app, &truth, &opts);

    // Wire round trip.
    let bytes = pkg.serialize();
    let reloaded = ProfilePackage::deserialize(&bytes).expect("round-trips");
    assert_eq!(reloaded, pkg);

    // Validation accepts it.
    Validator::new(opts, JitOptions::default())
        .validate(&app.repo, &bytes)
        .expect("healthy package validates");

    // Consumer compiles everything in the package's order.
    let out = consume(&app.repo, &reloaded, JitOptions::default(), &opts, 4).expect("consumes");
    assert!(
        out.compiled_funcs > 50,
        "flat profile optimizes many functions"
    );
    assert!(out.compile_bytes > 10_000);

    // Replay executes through the code cache without running dry.
    let mut ex = jit::Executor::new(
        &app.repo,
        &out.engine.code_cache,
        &reloaded.tier,
        &reloaded.ctx,
        jit::ExecutorConfig::default(),
    );
    for ep in app.endpoints.iter().take(5) {
        ex.run_call(ep.func);
    }
    let r = ex.report();
    assert!(r.instructions > 1_000);
    assert!(r.cycles > r.instructions, "CPI above 1");
}

#[test]
fn semantics_unchanged_by_jumpstart_configuration() {
    // The same requests must produce identical results whether or not the
    // VM installed package property orders — Jump-Start must never change
    // program behavior (paper §III: transparency).
    let (app, _mix, truth) = lab();
    let pkg = package_of(&app, &truth, &lax_opts());

    let run = |orders: bool| {
        let mut vm = Vm::new(&app.repo);
        if orders {
            vm.classes_mut()
                .install_prop_orders(pkg.prop_orders.iter().cloned());
            vm.loader_mut()
                .preload(&app.repo, pkg.preload.unit_order.iter().copied());
        }
        let mut outputs = Vec::new();
        for ep in &app.endpoints {
            for arg in [3i64, 444, 998] {
                outputs.push(vm.call(ep.func, &[Value::Int(arg)]).expect("runs"));
            }
        }
        outputs
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn warmup_improvement_is_mechanistic() {
    let (app, mix, truth) = lab();
    let model = build_app_model(&app, &truth);
    let pkg = package_of(&app, &truth, &lax_opts());
    let params = WarmupParams {
        duration_ms: 360_000,
        sample_ms: 10_000,
        init_ms_nojs: 30_000,
        init_ms_js: 12_000,
        deserialize_ms: 3_000,
        profile_serve_ms: 90_000,
        relocation_ms: 30_000,
        ..WarmupParams::fig4()
    }
    .with_compile_window(&model, 120_000);

    let js = simulate_warmup(
        &app,
        &model,
        &mix,
        &ServerConfig {
            params,
            jumpstart: Some(&pkg),
        },
    );
    let nojs = simulate_warmup(
        &app,
        &model,
        &mix,
        &ServerConfig {
            params,
            jumpstart: None,
        },
    );

    let (lj, ln) = (
        js.capacity_loss_over(360_000),
        nojs.capacity_loss_over(360_000),
    );
    assert!(
        lj < ln,
        "Jump-Start must reduce capacity loss ({lj:.3} vs {ln:.3})"
    );
    assert!(
        (ln - lj) / ln > 0.3,
        "reduction should be substantial, got {:.1}%",
        (ln - lj) / ln * 100.0
    );
    // The no-JS server walks A -> B -> C; the consumer never does.
    assert!(nojs.point_a_ms.is_some() && nojs.point_c_ms.is_some());
    assert!(js.point_a_ms.is_none());
}

#[test]
fn steady_state_data_layout_wins() {
    let (app, mix, truth) = lab();
    let params = SteadyParams {
        warm_requests: 100,
        measure_requests: 400,
        threads: 2,
        ..Default::default()
    };
    let js = measure_steady_state(&app, &mix, &truth, &SteadyConfig::jumpstart_full(), &params);
    let nojs = measure_steady_state(&app, &mix, &truth, &SteadyConfig::no_jumpstart(), &params);
    assert!(
        js.report.dcache.misses < nojs.report.dcache.misses,
        "property reordering should cut D-cache misses ({} vs {})",
        js.report.dcache.misses,
        nojs.report.dcache.misses
    );
}

#[test]
fn crash_loops_are_contained() {
    let report = run_crashloop(&CrashLoopParams {
        servers: 3000,
        packages: 5,
        poisoned: 1,
        ..Default::default()
    });
    // Exponential decay: each wave well under half the previous.
    for w in report.crashed_per_wave.windows(2) {
        if w[0] > 50 {
            assert!(
                w[1] * 2 < w[0],
                "decay too slow: {:?}",
                report.crashed_per_wave
            );
        }
    }
    assert!(report.waves_to_healthy.is_some());
}

#[test]
fn corrupted_packages_never_panic_and_fall_back() {
    let (app, _mix, truth) = lab();
    let pkg = package_of(&app, &truth, &lax_opts());
    let bytes = pkg.serialize().to_vec();
    // Every corruption either decodes to an error or (for meta-only flips)
    // still consumes; nothing panics.
    for i in (0..bytes.len()).step_by(97) {
        let mut bad = bytes.clone();
        bad[i] ^= 0x80;
        match ProfilePackage::deserialize(&bad) {
            Err(_) => {}
            Ok(p) => {
                let _ = consume(&app.repo, &p, JitOptions::default(), &lax_opts(), 1);
            }
        }
    }
}

#[test]
fn regional_packages_reflect_their_traffic() {
    // Packages built in different regions order different functions first —
    // the reason packages are per (region, bucket) (§II-C).
    let app = generate(&AppParams::tiny());
    let mix_a = RequestMix::new(&app, 0, 0);
    let mix_b = RequestMix::new(&app, 2, 1);
    let run_a = profile_run(&app, &mix_a, 150, 1);
    let run_b = profile_run(&app, &mix_b, 150, 1);
    let pkg_a = package_of(&app, &run_a, &lax_opts());
    let pkg_b = package_of(&app, &run_b, &lax_opts());
    assert_ne!(
        pkg_a.func_order, pkg_b.func_order,
        "different regions should produce different function orders"
    );
}

#[test]
fn verifier_accepts_all_generated_code() {
    let app = generate(&AppParams::tiny());
    bytecode::verify_repo(&app.repo).expect("generated app verifies");
}
