//! Cross-crate property-based tests: randomized programs and profiles must
//! preserve the system's core invariants.

use hhvm_jumpstart_repro::{analysis, jit, jumpstart, vm, workload};

use bytecode::{ClassId, FuncId, StrId, UnitId};
use jit::{BranchCount, CtxProfile, FuncProfile, TierProfile, TypeDist};
use jumpstart::{Coverage, PackageMeta, Poison, PreloadLists, ProfilePackage};
use proptest::prelude::*;
use vm::{Value, ValueKind, Vm};

// ---------- randomized Hacklet programs ----------

/// Generates a small arithmetic/control-flow Hacklet function body from a
/// seed (always valid source by construction).
fn gen_source(seed: u64) -> String {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    let iters = rng.gen_range(1..12);
    let m = rng.gen_range(2..6);
    let a = rng.gen_range(1..9);
    let b = rng.gen_range(1..9);
    let cls_props: usize = rng.gen_range(2..6);
    let mut props = String::new();
    for p in 0..cls_props {
        props.push_str(&format!("  public $p{p} = {p};\n"));
    }
    let hot = rng.gen_range(0..cls_props);
    format!(
        r#"
class K {{
{props}}}
function helper($x) {{
    if ($x % {m} == 0) {{ return $x * {a}; }}
    return $x + {b};
}}
function main($n) {{
    $o = new K();
    $s = 0;
    for ($i = 0; $i < {iters}; $i++) {{
        $s = $s + helper($i + $n);
        $o->p{hot} = $s;
        $s = $s + $o->p{hot} % 1000;
    }}
    return $s;
}}
"#
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random programs compile, verify, and produce identical results under
    /// any property permutation the package could install (§V-C safety).
    #[test]
    fn random_programs_invariant_under_prop_reorder(seed in 0u64..10_000, perm_seed in 0u64..1000) {
        let src = gen_source(seed);
        let repo = hackc::compile_unit("gen.hl", &src).expect("generated source compiles");
        bytecode::verify_repo(&repo).expect("verifies");
        let k = repo.class_by_name("K").expect("exists").id;

        let run = |order: Option<Vec<StrId>>| {
            let mut vm = Vm::new(&repo);
            if let Some(o) = order {
                vm.classes_mut().install_prop_order(k, o);
            }
            (0..5i64)
                .map(|arg| vm.call_by_name("main", &[Value::Int(arg * 7)]).expect("runs"))
                .collect::<Vec<_>>()
        };
        // A pseudo-random permutation of K's own properties.
        let mut names: Vec<StrId> = repo.class(k).props.iter().map(|p| p.name).collect();
        let n = names.len();
        for i in 0..n {
            let j = ((perm_seed as usize).wrapping_mul(31).wrapping_add(i * 17)) % n;
            names.swap(i, j);
        }
        prop_assert_eq!(run(None), run(Some(names)));
    }

    /// The optimized translation of any random program has structurally
    /// valid blocks and nonzero code, regardless of weight source.
    #[test]
    fn random_programs_translate_validly(seed in 0u64..10_000) {
        let src = gen_source(seed);
        let repo = hackc::compile_unit("gen.hl", &src).expect("compiles");
        let main = repo.func_by_name("main").expect("exists").id;
        let mut vm = Vm::new(&repo);
        let mut col = jit::ProfileCollector::new(&repo);
        vm.call_observed(main, &[Value::Int(9)], &mut col).expect("runs");
        col.end_request();
        for ws in [jit::WeightSource::TierOnly, jit::WeightSource::Accurate] {
            let unit = jit::translate_optimized(
                &repo, main, &col.tier, &col.ctx, ws,
                jit::InlineParams::default(), &|_, _| None,
            );
            prop_assert!(unit.code_size() > 0);
            prop_assert!(!unit.blocks.is_empty());
            for blk in &unit.blocks {
                for s in blk.term.successors() {
                    prop_assert!(s < unit.blocks.len(), "dangling successor");
                }
                prop_assert!(blk.est_taken_prob >= 0.0 && blk.est_taken_prob <= 1.0);
                prop_assert!(blk.true_taken_prob >= 0.0 && blk.true_taken_prob <= 1.0);
            }
        }
    }
}

// ---------- randomized packages ----------

fn arb_type_dist() -> impl Strategy<Value = TypeDist> {
    prop::collection::vec(0u64..1000, ValueKind::COUNT).prop_map(|counts| {
        let mut d = TypeDist::default();
        for (k, c) in ValueKind::ALL.iter().zip(counts) {
            d.add_raw(*k, c);
        }
        d
    })
}

fn arb_func_profile() -> impl Strategy<Value = FuncProfile> {
    (
        (0u64..100_000, any::<u64>()),
        prop::collection::vec((0u64..50_000, any::<u64>()), 0..12),
        prop::collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 0..12),
        prop::collection::hash_map(
            0u32..64,
            prop::collection::hash_map((0u32..512).prop_map(FuncId), 0u64..10_000, 0..4),
            0..4,
        ),
        prop::collection::hash_map((0u32..64, 0u8..4), arb_type_dist(), 0..4),
        prop::collection::hash_map(
            0u32..64,
            prop::collection::hash_map((0u32..64).prop_map(ClassId), 0u64..10_000, 0..3),
            0..3,
        ),
    )
        .prop_map(
            |((enter_count, name_hash), blocks, sigs, call_targets, types, prop_site_classes)| {
                let (block_counts, block_hashes) = blocks.into_iter().unzip();
                let mut block_opcode_hashes = Vec::new();
                let mut block_neighbor_hashes = Vec::new();
                let mut block_anchor_hashes = Vec::new();
                for (o, nb, a) in sigs {
                    block_opcode_hashes.push(o);
                    block_neighbor_hashes.push(nb);
                    block_anchor_hashes.push(a);
                }
                FuncProfile {
                    enter_count,
                    name_hash,
                    block_counts,
                    block_hashes,
                    block_opcode_hashes,
                    block_neighbor_hashes,
                    block_anchor_hashes,
                    call_targets,
                    types,
                    prop_site_classes,
                }
            },
        )
}

fn arb_package() -> impl Strategy<Value = ProfilePackage> {
    let meta = (
        any::<u32>(),
        any::<u32>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(
            |(region, bucket, seeder_id, created_ms, mass)| PackageMeta {
                region,
                bucket,
                seeder_id,
                created_ms,
                coverage: Coverage {
                    funcs_profiled: mass % 100,
                    counter_mass: mass,
                    requests: mass % 999,
                },
                poison: Poison::None,
            },
        );
    let tier = (
        prop::collection::hash_map((0u32..512).prop_map(FuncId), arb_func_profile(), 0..6),
        prop::collection::hash_map(
            ((0u32..64).prop_map(ClassId), (0u32..512).prop_map(StrId)),
            0u64..100_000,
            0..8,
        ),
    )
        .prop_map(|(funcs, prop_counts)| {
            let mut t = TierProfile::default();
            t.funcs = funcs;
            t.prop_counts = prop_counts;
            t
        });
    let ctx = prop::collection::hash_map(
        (
            prop::option::of(((0u32..512).prop_map(FuncId), 0u32..64)),
            (0u32..512).prop_map(FuncId),
            0u32..64,
        ),
        (0u64..1_000_000, 0u64..1_000_000)
            .prop_map(|(taken, not_taken)| BranchCount { taken, not_taken }),
        0..10,
    )
    .prop_map(|branches| CtxProfile {
        branches,
        ..Default::default()
    });
    (
        meta,
        prop::collection::vec((0u32..256).prop_map(UnitId), 0..20),
        tier,
        ctx,
        prop::collection::vec((0u32..512).prop_map(FuncId), 0..30),
    )
        .prop_map(|(meta, unit_order, tier, ctx, func_order)| ProfilePackage {
            meta,
            preload: PreloadLists { unit_order },
            tier,
            ctx,
            prop_orders: Vec::new(),
            func_order,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any package round-trips exactly through the wire format.
    #[test]
    fn arbitrary_packages_round_trip(pkg in arb_package()) {
        let bytes = pkg.serialize();
        let back = ProfilePackage::deserialize(&bytes).expect("round-trips");
        prop_assert_eq!(back, pkg);
    }

    /// Any single-byte corruption is rejected, never a panic or a silent
    /// success (§VI: corrupted packages must fail cleanly to fallback).
    #[test]
    fn arbitrary_corruption_is_detected(pkg in arb_package(), at in any::<prop::sample::Index>(), flip in 1u8..=255) {
        let bytes = pkg.serialize().to_vec();
        let mut bad = bytes.clone();
        let i = at.index(bad.len());
        bad[i] ^= flip;
        prop_assert!(ProfilePackage::deserialize(&bad).is_err());
    }

    /// Truncation at any point is rejected.
    #[test]
    fn arbitrary_truncation_is_detected(pkg in arb_package(), at in any::<prop::sample::Index>()) {
        let bytes = pkg.serialize();
        let len = at.index(bytes.len());
        prop_assert!(ProfilePackage::deserialize(&bytes[..len]).is_err());
    }
}

// ---------- stale-profile repair ----------

use analysis::{repair_profile_with, MatchMode, RepairOptions};
use workload::{generate_release, AppParams, ChurnParams, RequestMix};

/// A base application plus a profile collected on it, built once: every
/// repair case below starts from this same pre-churn profile.
fn stale_lab() -> &'static (workload::App, TierProfile, CtxProfile) {
    static LAB: std::sync::OnceLock<(workload::App, TierProfile, CtxProfile)> =
        std::sync::OnceLock::new();
    LAB.get_or_init(|| {
        let app = workload::generate(&AppParams::tiny());
        let mix = RequestMix::new(&app, 0, 0);
        let run = workload::profile_run(&app, &mix, 80, 21);
        (app, run.tier, run.ctx)
    })
}

/// Churn rates worth exercising (discrete so failures minimize cleanly).
const CHURN_RATES: [f64; 4] = [0.05, 0.1, 0.2, 0.4];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A churn rate of 0 regenerates the identical release, so repair must
    /// be a perfect no-op in every matching mode — no function repaired or
    /// dropped, no counter pruned, profile bit-identical.
    #[test]
    fn zero_churn_repair_is_untouched(seed in any::<u64>(), mode_ix in 0usize..3) {
        let (_, tier0, ctx0) = stale_lab();
        let (release, churn) =
            generate_release(&AppParams::tiny(), &ChurnParams { seed, rate: 0.0 });
        prop_assert_eq!(churn, workload::ChurnReport::default());
        let mode = [MatchMode::Full, MatchMode::DropStale, MatchMode::LegacyGreedy][mode_ix];
        let mut tier = tier0.clone();
        let mut ctx = ctx0.clone();
        let report =
            repair_profile_with(&release.repo, &mut tier, &mut ctx, &RepairOptions { mode });
        prop_assert!(report.untouched(), "churn 0 repair was not a no-op: {report:?}");
        prop_assert_eq!(&tier, tier0);
        prop_assert_eq!(&ctx, ctx0);
    }

    /// The matcher is deterministic: repairing two clones of the same
    /// profile against the same churned release yields identical reports
    /// and identical repaired profiles.
    #[test]
    fn repair_is_deterministic(seed in any::<u64>(), rate_ix in 0usize..4) {
        let (_, tier0, ctx0) = stale_lab();
        let churn = ChurnParams { seed, rate: CHURN_RATES[rate_ix] };
        let (release, _) = generate_release(&AppParams::tiny(), &churn);
        let mut t1 = tier0.clone();
        let mut c1 = ctx0.clone();
        let mut t2 = tier0.clone();
        let mut c2 = ctx0.clone();
        let opts = RepairOptions::default();
        let r1 = repair_profile_with(&release.repo, &mut t1, &mut c1, &opts);
        let r2 = repair_profile_with(&release.repo, &mut t2, &mut c2, &opts);
        prop_assert_eq!(r1, r2);
        prop_assert_eq!(t1, t2);
        prop_assert_eq!(c1, c2);
    }

    /// Whatever the churn, the repaired profile's counts satisfy flow
    /// conservation: the strict lint (Kirchhoff check on) reports zero
    /// errors against the new release.
    #[test]
    fn repaired_counts_satisfy_kirchhoff(seed in any::<u64>(), rate_ix in 0usize..4) {
        let (_, tier0, ctx0) = stale_lab();
        let churn = ChurnParams { seed, rate: CHURN_RATES[rate_ix] };
        let (release, _) = generate_release(&AppParams::tiny(), &churn);
        let mut tier = tier0.clone();
        let mut ctx = ctx0.clone();
        analysis::repair_profile(&release.repo, &mut tier, &mut ctx);
        let report = analysis::lint_profile_with(
            &release.repo,
            &analysis::ProfileView {
                tier: &tier,
                ctx: &ctx,
                unit_order: &[],
                prop_orders: &[],
                func_order: &[],
            },
            &analysis::LintOptions { flow_conservation: true, type_feasibility: false },
        );
        let first = report.errors().next();
        prop_assert_eq!(report.error_count(), 0, "repaired profile flow-dirty: {first:?}");
    }
}
