//! Cross-crate property-based tests: randomized programs and profiles must
//! preserve the system's core invariants.

use hhvm_jumpstart_repro::{jit, jumpstart, vm};

use bytecode::{ClassId, FuncId, StrId, UnitId};
use jit::{BranchCount, CtxProfile, FuncProfile, TierProfile, TypeDist};
use jumpstart::{Coverage, PackageMeta, Poison, PreloadLists, ProfilePackage};
use proptest::prelude::*;
use vm::{Value, ValueKind, Vm};

// ---------- randomized Hacklet programs ----------

/// Generates a small arithmetic/control-flow Hacklet function body from a
/// seed (always valid source by construction).
fn gen_source(seed: u64) -> String {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    let iters = rng.gen_range(1..12);
    let m = rng.gen_range(2..6);
    let a = rng.gen_range(1..9);
    let b = rng.gen_range(1..9);
    let cls_props: usize = rng.gen_range(2..6);
    let mut props = String::new();
    for p in 0..cls_props {
        props.push_str(&format!("  public $p{p} = {p};\n"));
    }
    let hot = rng.gen_range(0..cls_props);
    format!(
        r#"
class K {{
{props}}}
function helper($x) {{
    if ($x % {m} == 0) {{ return $x * {a}; }}
    return $x + {b};
}}
function main($n) {{
    $o = new K();
    $s = 0;
    for ($i = 0; $i < {iters}; $i++) {{
        $s = $s + helper($i + $n);
        $o->p{hot} = $s;
        $s = $s + $o->p{hot} % 1000;
    }}
    return $s;
}}
"#
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random programs compile, verify, and produce identical results under
    /// any property permutation the package could install (§V-C safety).
    #[test]
    fn random_programs_invariant_under_prop_reorder(seed in 0u64..10_000, perm_seed in 0u64..1000) {
        let src = gen_source(seed);
        let repo = hackc::compile_unit("gen.hl", &src).expect("generated source compiles");
        bytecode::verify_repo(&repo).expect("verifies");
        let k = repo.class_by_name("K").expect("exists").id;

        let run = |order: Option<Vec<StrId>>| {
            let mut vm = Vm::new(&repo);
            if let Some(o) = order {
                vm.classes_mut().install_prop_order(k, o);
            }
            (0..5i64)
                .map(|arg| vm.call_by_name("main", &[Value::Int(arg * 7)]).expect("runs"))
                .collect::<Vec<_>>()
        };
        // A pseudo-random permutation of K's own properties.
        let mut names: Vec<StrId> = repo.class(k).props.iter().map(|p| p.name).collect();
        let n = names.len();
        for i in 0..n {
            let j = ((perm_seed as usize).wrapping_mul(31).wrapping_add(i * 17)) % n;
            names.swap(i, j);
        }
        prop_assert_eq!(run(None), run(Some(names)));
    }

    /// The optimized translation of any random program has structurally
    /// valid blocks and nonzero code, regardless of weight source.
    #[test]
    fn random_programs_translate_validly(seed in 0u64..10_000) {
        let src = gen_source(seed);
        let repo = hackc::compile_unit("gen.hl", &src).expect("compiles");
        let main = repo.func_by_name("main").expect("exists").id;
        let mut vm = Vm::new(&repo);
        let mut col = jit::ProfileCollector::new(&repo);
        vm.call_observed(main, &[Value::Int(9)], &mut col).expect("runs");
        col.end_request();
        for ws in [jit::WeightSource::TierOnly, jit::WeightSource::Accurate] {
            let unit = jit::translate_optimized(
                &repo, main, &col.tier, &col.ctx, ws,
                jit::InlineParams::default(), &|_, _| None,
            );
            prop_assert!(unit.code_size() > 0);
            prop_assert!(!unit.blocks.is_empty());
            for blk in &unit.blocks {
                for s in blk.term.successors() {
                    prop_assert!(s < unit.blocks.len(), "dangling successor");
                }
                prop_assert!(blk.est_taken_prob >= 0.0 && blk.est_taken_prob <= 1.0);
                prop_assert!(blk.true_taken_prob >= 0.0 && blk.true_taken_prob <= 1.0);
            }
        }
    }
}

// ---------- randomized packages ----------

fn arb_type_dist() -> impl Strategy<Value = TypeDist> {
    prop::collection::vec(0u64..1000, ValueKind::COUNT).prop_map(|counts| {
        let mut d = TypeDist::default();
        for (k, c) in ValueKind::ALL.iter().zip(counts) {
            d.add_raw(*k, c);
        }
        d
    })
}

fn arb_func_profile() -> impl Strategy<Value = FuncProfile> {
    (
        0u64..100_000,
        prop::collection::vec((0u64..50_000, any::<u64>()), 0..12),
        prop::collection::hash_map(
            0u32..64,
            prop::collection::hash_map((0u32..512).prop_map(FuncId), 0u64..10_000, 0..4),
            0..4,
        ),
        prop::collection::hash_map((0u32..64, 0u8..4), arb_type_dist(), 0..4),
        prop::collection::hash_map(
            0u32..64,
            prop::collection::hash_map((0u32..64).prop_map(ClassId), 0u64..10_000, 0..3),
            0..3,
        ),
    )
        .prop_map(
            |(enter_count, blocks, call_targets, types, prop_site_classes)| {
                let (block_counts, block_hashes) = blocks.into_iter().unzip();
                FuncProfile {
                    enter_count,
                    block_counts,
                    block_hashes,
                    call_targets,
                    types,
                    prop_site_classes,
                }
            },
        )
}

fn arb_package() -> impl Strategy<Value = ProfilePackage> {
    let meta = (
        any::<u32>(),
        any::<u32>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(
            |(region, bucket, seeder_id, created_ms, mass)| PackageMeta {
                region,
                bucket,
                seeder_id,
                created_ms,
                coverage: Coverage {
                    funcs_profiled: mass % 100,
                    counter_mass: mass,
                    requests: mass % 999,
                },
                poison: Poison::None,
            },
        );
    let tier = (
        prop::collection::hash_map((0u32..512).prop_map(FuncId), arb_func_profile(), 0..6),
        prop::collection::hash_map(
            ((0u32..64).prop_map(ClassId), (0u32..512).prop_map(StrId)),
            0u64..100_000,
            0..8,
        ),
    )
        .prop_map(|(funcs, prop_counts)| {
            let mut t = TierProfile::default();
            t.funcs = funcs;
            t.prop_counts = prop_counts;
            t
        });
    let ctx = prop::collection::hash_map(
        (
            prop::option::of(((0u32..512).prop_map(FuncId), 0u32..64)),
            (0u32..512).prop_map(FuncId),
            0u32..64,
        ),
        (0u64..1_000_000, 0u64..1_000_000)
            .prop_map(|(taken, not_taken)| BranchCount { taken, not_taken }),
        0..10,
    )
    .prop_map(|branches| CtxProfile {
        branches,
        ..Default::default()
    });
    (
        meta,
        prop::collection::vec((0u32..256).prop_map(UnitId), 0..20),
        tier,
        ctx,
        prop::collection::vec((0u32..512).prop_map(FuncId), 0..30),
    )
        .prop_map(|(meta, unit_order, tier, ctx, func_order)| ProfilePackage {
            meta,
            preload: PreloadLists { unit_order },
            tier,
            ctx,
            prop_orders: Vec::new(),
            func_order,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any package round-trips exactly through the wire format.
    #[test]
    fn arbitrary_packages_round_trip(pkg in arb_package()) {
        let bytes = pkg.serialize();
        let back = ProfilePackage::deserialize(&bytes).expect("round-trips");
        prop_assert_eq!(back, pkg);
    }

    /// Any single-byte corruption is rejected, never a panic or a silent
    /// success (§VI: corrupted packages must fail cleanly to fallback).
    #[test]
    fn arbitrary_corruption_is_detected(pkg in arb_package(), at in any::<prop::sample::Index>(), flip in 1u8..=255) {
        let bytes = pkg.serialize().to_vec();
        let mut bad = bytes.clone();
        let i = at.index(bad.len());
        bad[i] ^= flip;
        prop_assert!(ProfilePackage::deserialize(&bad).is_err());
    }

    /// Truncation at any point is rejected.
    #[test]
    fn arbitrary_truncation_is_detected(pkg in arb_package(), at in any::<prop::sample::Index>()) {
        let bytes = pkg.serialize();
        let len = at.index(bytes.len());
        prop_assert!(ProfilePackage::deserialize(&bytes[..len]).is_err());
    }
}
