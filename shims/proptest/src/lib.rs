//! Offline drop-in subset of `proptest`: randomized property testing with
//! the strategy combinators this workspace uses. Cases are generated from
//! a deterministic per-test seed, so failures reproduce across runs.
//!
//! Deliberate simplifications vs upstream:
//! * **No shrinking** — a failing case panics with the generated inputs
//!   left to the assertion message.
//! * `prop_assert!`/`prop_assert_eq!` panic directly instead of returning
//!   a `TestCaseResult`.
//! * Strategies are sampled eagerly; there is no lazy value tree.

use std::collections::HashMap;
use std::hash::Hash;
use std::marker::PhantomData;

use rand::rngs::SmallRng;
use rand::{Rng, SampleUniform, SeedableRng};

/// The RNG threaded through strategy generation.
pub type TestRng = SmallRng;

/// Per-`proptest!` block configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy: Sized {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F> {
        FlatMap { inner: self, f }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

impl<T: SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! impl_inclusive_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start();
                let hi = *self.end();
                if hi < <$t>::MAX {
                    rng.gen_range(lo..hi + 1)
                } else if lo > <$t>::MIN {
                    // Avoid overflow: sample [lo-1, hi) then shift.
                    rng.gen_range(lo - 1..hi) + 1
                } else {
                    // Full domain.
                    rng.gen::<u64>() as $t
                }
            }
        }
    )*};
}
impl_inclusive_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A / a);
impl_tuple_strategy!(A / a, B / b);
impl_tuple_strategy!(A / a, B / b, C / c);
impl_tuple_strategy!(A / a, B / b, C / c, D / d);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);

/// Types with a canonical whole-domain strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen::<bool>()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::*;

    /// Accepted size specifications: exact, `a..b`, `a..=b`.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.lo..self.hi)
        }
    }

    /// Strategy for `Vec<S::Value>` with a random length.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashMap<K, V>` with a random entry count.
    pub struct HashMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// Generates hash maps; key collisions may produce fewer entries than
    /// sampled, matching upstream behavior loosely.
    pub fn hash_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> HashMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Eq + Hash,
        V: Strategy,
    {
        HashMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K, V> Strategy for HashMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Eq + Hash,
        V: Strategy,
    {
        type Value = HashMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> HashMap<K::Value, V::Value> {
            let n = self.size.sample(rng);
            let mut m = HashMap::with_capacity(n);
            for _ in 0..n {
                m.insert(self.key.generate(rng), self.value.generate(rng));
            }
            m
        }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use super::*;

    /// Strategy yielding `None` or `Some` of the inner strategy.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` with probability ~3/4, like upstream's default.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_range(0u32..4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Sampling helpers (`prop::sample`).
pub mod sample {
    use super::*;

    /// An arbitrary index, projected onto a concrete collection length.
    #[derive(Clone, Copy, Debug)]
    pub struct Index {
        raw: usize,
    }

    impl Index {
        /// Projects onto `[0, len)`.
        ///
        /// # Panics
        ///
        /// Panics if `len == 0`, like upstream.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.raw % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index {
                raw: rng.gen::<u64>() as usize,
            }
        }
    }
}

#[doc(hidden)]
pub fn test_seed(name: &str) -> u64 {
    // FNV-1a over the test name: deterministic per test, stable across runs.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[doc(hidden)]
pub fn make_rng(seed: u64, case: u32) -> TestRng {
    TestRng::seed_from_u64(seed ^ ((case as u64) << 32 | case as u64))
}

/// Asserts a property-test condition (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...)` becomes a
/// `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __seed = $crate::test_seed(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let mut __rng = $crate::make_rng(__seed, __case);
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0u64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn combinators_compose(
            v in prop::collection::vec((0u32..10).prop_map(|n| n * 2), 1..8),
            m in prop::collection::hash_map(0u32..100, 0u64..9, 0..5),
            o in prop::option::of(0u32..3),
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|n| n % 2 == 0));
            prop_assert!(m.len() < 5);
            if let Some(x) = o { prop_assert!(x < 3); }
            prop_assert!(idx.index(v.len()) < v.len());
        }

        #[test]
        fn flat_map_dependent_sizes((len, v) in (1usize..6).prop_flat_map(|n| (Just(n), prop::collection::vec(0u8..=255, n)))) {
            prop_assert_eq!(v.len(), len);
        }
    }

    #[test]
    fn seeds_are_deterministic() {
        let a = crate::test_seed("x::y");
        let b = crate::test_seed("x::y");
        assert_eq!(a, b);
        assert_ne!(a, crate::test_seed("x::z"));
    }
}
