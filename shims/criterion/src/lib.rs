//! Offline drop-in subset of `criterion`: enough of the API for the bench
//! targets to compile and produce useful wall-clock numbers without
//! crates.io access. No statistical analysis, plots or baselines — each
//! benchmark is warmed up briefly, then timed over a fixed batch and
//! reported as mean ns/iter on stdout.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value sink, like `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation (printed, not analyzed).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter into one id.
    pub fn new(name: impl Into<String>, param: impl Display) -> BenchmarkId {
        BenchmarkId {
            full: format!("{}/{}", name.into(), param),
        }
    }
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, first warming up, then measuring a fixed batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup: run until ~20ms spent or 3 iterations, whichever is later.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_iters < 3 || warm_start.elapsed() < Duration::from_millis(20) {
            black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        // Pick a batch targeting ~100ms of measurement.
        let per_iter = warm_start.elapsed().as_nanos().max(1) / warm_iters.max(1) as u128;
        let batch = ((100_000_000 / per_iter.max(1)) as u64).clamp(1, 1_000_000);
        let start = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters = batch;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    throughput: Option<Throughput>,
    _c: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for compatibility; unused).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.throughput, &mut f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.full);
        run_one(&full, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, throughput: Option<Throughput>, f: &mut F) {
    let mut b = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("bench {name:<50} (no iterations)");
        return;
    }
    let ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
    match throughput {
        Some(Throughput::Bytes(n)) => {
            let mbs = n as f64 / ns * 1e3;
            println!("bench {name:<50} {ns:>14.1} ns/iter  {mbs:>10.1} MB/s");
        }
        Some(Throughput::Elements(n)) => {
            let eps = n as f64 / ns * 1e9;
            println!("bench {name:<50} {ns:>14.1} ns/iter  {eps:>10.0} elem/s");
        }
        None => println!("bench {name:<50} {ns:>14.1} ns/iter"),
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _c: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), None, &mut f);
        self
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test --benches` invokes bench binaries with harness
            // args; run nothing in that mode so tests stay fast.
            let args: Vec<String> = std::env::args().collect();
            if args.iter().any(|a| a == "--test" || a == "--list") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(10).throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scale", 4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
    }
}
