//! Offline drop-in subset of the `bytes` crate: cheap-to-clone [`Bytes`],
//! a growable [`BytesMut`], and the [`Buf`]/[`BufMut`] cursor traits —
//! exactly the surface the package wire codec and store use.

use std::ops::Deref;
use std::sync::Arc;

/// Immutable, cheaply clonable byte buffer (shared via `Arc`).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes {
            data: Arc::new(bytes.to_vec()),
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.as_ref().clone()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::new(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes {
            data: Arc::new(v.to_vec()),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter().take(32) {
            write!(f, "\\x{b:02x}")?;
        }
        if self.data.len() > 32 {
            write!(f, "…+{}", self.data.len() - 32)?;
        }
        write!(f, "\"")
    }
}

/// Growable byte buffer, frozen into [`Bytes`] when complete.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::new(self.data),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source. All `get_*` methods advance the cursor.
///
/// # Panics
///
/// Like the upstream crate, `get_*`/`copy_to_slice` panic when fewer bytes
/// remain than requested — callers bounds-check with [`Buf::remaining`].
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads `dst.len()` bytes into `dst`.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "Buf::copy_to_slice out of bounds");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Write cursor appending to a growable buffer.
pub trait BufMut {
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_cursors() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(7);
        w.put_u32_le(0xdead_beef);
        w.put_u64_le(u64::MAX - 3);
        w.put_f64_le(1.5);
        w.put_slice(b"xyz");
        let frozen = w.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_u64_le(), u64::MAX - 3);
        assert_eq!(r.get_f64_le(), 1.5);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bytes_clone_is_shallow_and_equal() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(&a[..], &[1, 2, 3]);
        assert_eq!(a.len(), 3);
        assert_eq!(Bytes::from_static(b"hi").to_vec(), vec![b'h', b'i']);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn overread_panics_like_upstream() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }
}
