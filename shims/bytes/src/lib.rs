//! Offline drop-in subset of the `bytes` crate: cheap-to-clone [`Bytes`]
//! with zero-copy [`Bytes::slice`], a growable [`BytesMut`], and the
//! [`Buf`]/[`BufMut`] cursor traits — exactly the surface the package wire
//! codec and store use.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Immutable, cheaply clonable byte buffer: a shared `Arc` backing store
/// plus an offset/length view, so [`Bytes::slice`] never copies.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::from(bytes.to_vec())
    }

    /// Number of bytes in this view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Returns a sub-view sharing the same backing allocation — no copy.
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds or inverted, like upstream.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "Bytes::slice out of bounds: {start}..{end} of {}",
            self.len
        );
        Bytes {
            data: Arc::clone(&self.data),
            off: self.off + start,
            len: end - start,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.off..self.off + self.len]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let len = v.len();
        Bytes {
            data: Arc::new(v),
            off: 0,
            len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::from(v.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(32) {
            write!(f, "\\x{b:02x}")?;
        }
        if self.len > 32 {
            write!(f, "…+{}", self.len - 32)?;
        }
        write!(f, "\"")
    }
}

/// Growable byte buffer, frozen into [`Bytes`] when complete.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Reserves capacity for at least `additional` more bytes, so a writer
    /// that knows its exact encoded size up front never reallocates.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Total allocated capacity.
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source. All `get_*` methods advance the cursor.
///
/// # Panics
///
/// Like the upstream crate, `get_*`/`copy_to_slice` panic when fewer bytes
/// remain than requested — callers bounds-check with [`Buf::remaining`].
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads `dst.len()` bytes into `dst`.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "Buf::copy_to_slice out of bounds");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Write cursor appending to a growable buffer.
pub trait BufMut {
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_cursors() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(7);
        w.put_u32_le(0xdead_beef);
        w.put_u64_le(u64::MAX - 3);
        w.put_f64_le(1.5);
        w.put_slice(b"xyz");
        let frozen = w.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_u64_le(), u64::MAX - 3);
        assert_eq!(r.get_f64_le(), 1.5);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bytes_clone_is_shallow_and_equal() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(&a[..], &[1, 2, 3]);
        assert_eq!(a.len(), 3);
        assert_eq!(Bytes::from_static(b"hi").to_vec(), vec![b'h', b'i']);
    }

    #[test]
    fn slice_shares_backing_allocation() {
        let a = Bytes::from(vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let mid = a.slice(2..6);
        assert_eq!(&mid[..], &[2, 3, 4, 5]);
        // Zero-copy: the sub-view points into the parent's allocation.
        assert_eq!(mid.as_ref().as_ptr(), a.as_ref()[2..].as_ptr());
        // Nested slices compose offsets.
        let inner = mid.slice(1..=2);
        assert_eq!(&inner[..], &[3, 4]);
        assert_eq!(inner.as_ref().as_ptr(), a.as_ref()[3..].as_ptr());
        // Open-ended and empty ranges.
        assert_eq!(&a.slice(..3)[..], &[0, 1, 2]);
        assert_eq!(&a.slice(6..)[..], &[6, 7]);
        assert!(a.slice(4..4).is_empty());
        // Equality/hashing respect the view, not the backing store.
        assert_eq!(mid, Bytes::from(vec![2, 3, 4, 5]));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let a = Bytes::from(vec![1, 2, 3]);
        let _ = a.slice(1..5);
    }

    #[test]
    fn reserve_prevents_reallocation() {
        let mut w = BytesMut::new();
        w.reserve(16);
        let cap = w.capacity();
        assert!(cap >= 16);
        w.put_u64_le(1);
        w.put_u64_le(2);
        assert_eq!(w.capacity(), cap);
        assert_eq!(w.len(), 16);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn overread_panics_like_upstream() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }
}
