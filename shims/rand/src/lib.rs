//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The container this repo builds in has no crates.io access, so the
//! workspace vendors the small slice of `rand` it actually uses: a
//! deterministic [`rngs::SmallRng`] (splitmix64-seeded xorshift*), the
//! [`Rng`] extension trait with `gen`/`gen_range`/`gen_bool`, and
//! [`SeedableRng::seed_from_u64`]. Distributions are uniform; all users in
//! this workspace seed explicitly, so reproducibility — not statistical
//! perfection — is the contract.

/// Low-level entropy source: 64 uniform bits per call.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding, reduced to the one constructor the workspace uses.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Samples one value from the standard distribution.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types `gen_range` can sample uniformly from a half-open range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Samples uniformly from `[lo, hi)`. `lo < hi` is checked by the caller.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let width = (hi as u128) - (lo as u128);
                lo + (rng.next_u64() as u128 % width) as $t
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let width = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (rng.next_u64() as u128 % width) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution for `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        assert!(range.start < range.end, "gen_range called with empty range");
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xorshift64* over a
    /// splitmix64-expanded seed). Not cryptographic.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64* — passes BigCrush's small-state tier; plenty for
            // simulation seeds.
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // splitmix64 step guarantees a nonzero, well-mixed state.
            let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            SmallRng { state: z | 1 }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10i64..20);
            assert!((10..20).contains(&v));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
