//! Offline drop-in subset of `crossbeam`: [`scope`] for structured scoped
//! threads, implemented on `std::thread::scope` (stable since 1.63).
//!
//! Divergence from upstream: a panicking child causes the scope itself to
//! panic at the join point instead of returning `Err`, because
//! `std::thread::scope` re-raises unjoined panics. Workspace callers only
//! ever `.expect()` the result, so the observable behavior is identical.

use std::thread;

/// A scope handle passed to [`scope`]'s closure and to spawned children.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; the closure receives the scope so it can
    /// spawn further children, mirroring crossbeam's signature.
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Runs `f` with a scope in which borrowed-data threads can be spawned;
/// all children are joined before this returns.
///
/// # Errors
///
/// Never returns `Err` in this implementation (see module docs); the
/// `Result` is kept for crossbeam API compatibility.
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_share_borrowed_data() {
        let counter = AtomicUsize::new(0);
        let data = [1usize, 2, 3, 4];
        scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    let sum: usize = chunk.iter().sum();
                    counter.fetch_add(sum, Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let hits = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }
}
