//! Offline drop-in subset of `crossbeam`: [`scope`] for structured scoped
//! threads (on `std::thread::scope`, stable since 1.63), [`deque`] for
//! work-stealing task queues, and [`channel`] for MPMC message passing.
//!
//! Divergence from upstream: a panicking child causes the scope itself to
//! panic at the join point instead of returning `Err`, because
//! `std::thread::scope` re-raises unjoined panics. Workspace callers only
//! ever `.expect()` the result, so the observable behavior is identical.
//! The deque and channel are mutex-based rather than lock-free — same
//! semantics, adequate throughput for the workloads in this workspace.

use std::thread;

/// A scope handle passed to [`scope`]'s closure and to spawned children.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; the closure receives the scope so it can
    /// spawn further children, mirroring crossbeam's signature.
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Runs `f` with a scope in which borrowed-data threads can be spawned;
/// all children are joined before this returns.
///
/// # Errors
///
/// Never returns `Err` in this implementation (see module docs); the
/// `Result` is kept for crossbeam API compatibility.
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

/// Work-stealing double-ended queues: each worker owns a [`deque::Worker`]
/// it pushes/pops locally; other threads grab work through cloned
/// [`deque::Stealer`] handles when their own queue runs dry.
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt, mirroring crossbeam's three-way enum.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// A task was stolen.
        Success(T),
        /// The operation lost a race and should be retried.
        Retry,
    }

    impl<T> Steal<T> {
        /// Returns the stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }

        /// Whether the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    /// The owner side of a work-stealing queue.
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Creates a FIFO work-stealing queue (tasks pop in push order).
        pub fn new_fifo() -> Worker<T> {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Pushes a task onto the queue.
        pub fn push(&self, task: T) {
            self.queue.lock().unwrap().push_back(task);
        }

        /// Pops a task from the owner's end of the queue.
        pub fn pop(&self) -> Option<T> {
            self.queue.lock().unwrap().pop_front()
        }

        /// Number of tasks currently queued.
        pub fn len(&self) -> usize {
            self.queue.lock().unwrap().len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().unwrap().is_empty()
        }

        /// Creates a stealer handle for other threads.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    /// A handle other threads use to steal tasks from a [`Worker`].
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Stealer<T> {
        /// Attempts to steal one task from the far end of the queue.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock() {
                Ok(mut q) => match q.pop_back() {
                    Some(t) => Steal::Success(t),
                    None => Steal::Empty,
                },
                // A poisoned lock means a pusher panicked mid-operation;
                // surface as Retry so the caller's loop can re-observe.
                Err(_) => Steal::Retry,
            }
        }

        /// Whether the queue was empty at the time of observation.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().map(|q| q.is_empty()).unwrap_or(true)
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }
}

/// Multi-producer multi-consumer FIFO channels. Only the unbounded
/// flavor is provided — the consumer pipeline's reorder buffer applies
/// its own backpressure by construction (bounded task count).
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        ready: Condvar,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every [`Sender`] has been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a message, waking one blocked receiver.
        ///
        /// # Errors
        ///
        /// Returns the message back if every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap();
            if inner.receivers == 0 {
                return Err(SendError(msg));
            }
            inner.queue.push_back(msg);
            drop(inner);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.shared.inner.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = match self.shared.inner.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            inner.senders -= 1;
            let disconnected = inner.senders == 0;
            drop(inner);
            if disconnected {
                // Wake every blocked receiver so they observe disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] once the channel is empty and all senders
        /// are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.ready.wait(inner).unwrap();
            }
        }

        /// Non-blocking receive; `None` when nothing is queued right now.
        pub fn try_recv(&self) -> Option<T> {
            self.shared.inner.lock().unwrap().queue.pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.shared.inner.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = match self.shared.inner.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            inner.receivers -= 1;
        }
    }

    impl<T> std::iter::IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;

        fn into_iter(self) -> IntoIter<T> {
            IntoIter { rx: self }
        }
    }

    /// Draining iterator over a receiver; ends at disconnect.
    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_share_borrowed_data() {
        let counter = AtomicUsize::new(0);
        let data = [1usize, 2, 3, 4];
        scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    let sum: usize = chunk.iter().sum();
                    counter.fetch_add(sum, Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let hits = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn deque_owner_pops_fifo_and_stealers_take_from_far_end() {
        let w = deque::Worker::new_fifo();
        for i in 0..4 {
            w.push(i);
        }
        assert_eq!(w.len(), 4);
        // Owner pops in push order (FIFO).
        assert_eq!(w.pop(), Some(0));
        // Stealer takes from the opposite end.
        let s = w.stealer();
        assert_eq!(s.steal().success(), Some(3));
        assert_eq!(w.pop(), Some(1));
        assert_eq!(s.steal().success(), Some(2));
        assert!(s.steal().is_empty());
        assert!(w.is_empty());
    }

    #[test]
    fn deque_steals_race_without_duplication() {
        let w = deque::Worker::new_fifo();
        const N: usize = 500;
        for i in 0..N {
            w.push(i);
        }
        let total = AtomicUsize::new(0);
        let count = AtomicUsize::new(0);
        scope(|s| {
            let (total, count) = (&total, &count);
            for _ in 0..4 {
                let st = w.stealer();
                s.spawn(move |_| loop {
                    match st.steal() {
                        deque::Steal::Success(v) => {
                            total.fetch_add(v, Ordering::Relaxed);
                            count.fetch_add(1, Ordering::Relaxed);
                        }
                        deque::Steal::Empty => break,
                        deque::Steal::Retry => {}
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(count.load(Ordering::Relaxed), N);
        assert_eq!(total.load(Ordering::Relaxed), N * (N - 1) / 2);
    }

    #[test]
    fn channel_delivers_across_threads_and_disconnects() {
        let (tx, rx) = channel::unbounded();
        let sum = AtomicUsize::new(0);
        scope(|s| {
            for base in [0usize, 100] {
                let tx = tx.clone();
                s.spawn(move |_| {
                    for i in 0..10 {
                        tx.send(base + i).unwrap();
                    }
                });
            }
            drop(tx); // last sender dropped once both workers finish
            s.spawn(|_| {
                while let Ok(v) = rx.recv() {
                    sum.fetch_add(v, Ordering::Relaxed);
                }
            });
        })
        .unwrap();
        assert_eq!(sum.load(Ordering::Relaxed), 45 + 45 + 100 * 10);
    }

    #[test]
    fn channel_send_fails_after_receiver_drop() {
        let (tx, rx) = channel::unbounded();
        drop(rx);
        assert!(tx.send(1u32).is_err());
    }
}
