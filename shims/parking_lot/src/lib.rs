//! Offline drop-in subset of `parking_lot`: [`Mutex`] and [`RwLock`] with
//! the non-poisoning API, implemented over `std::sync`. A poisoned std
//! lock (a thread panicked while holding it) is unwrapped into the inner
//! guard, matching parking_lot's "no poisoning" semantics.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a lock around `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

/// A readers-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock around `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_and_into_inner() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std lock");
        })
        .join();
        // parking_lot semantics: still lockable afterwards.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
